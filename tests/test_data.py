"""Tests for the synthetic dataset generators and workloads."""

import pytest

from repro.core.types import Record, Watermark
from repro.data import (
    FOOTBALL_DISTINCT_VALUES,
    MACHINE_DISTINCT_VALUES,
    SECOND_MS,
    constrained_stream,
    dashboard_queries,
    dashboard_windows,
    football_keyed_stream,
    football_stream,
    m4_dashboard_queries,
    machine_stream,
    session_query,
)
from repro.runtime import disorder_fraction


class TestFootball:
    def test_record_count(self):
        assert len(football_stream(500)) == 500

    def test_in_order(self):
        stream = football_stream(2000)
        assert all(a.ts <= b.ts for a, b in zip(stream, stream[1:]))

    def test_rate_approximation(self):
        stream = football_stream(4000, gaps_per_minute=0)
        span_ms = stream[-1].ts - stream[0].ts
        rate = 4000 / (span_ms / 1000)
        assert 1500 < rate < 2500  # ~2000 Hz

    def test_session_gaps_present(self):
        stream = football_stream(50_000, gaps_per_minute=5, gap_ms=1500)
        gaps = sum(
            1 for a, b in zip(stream, stream[1:]) if b.ts - a.ts >= 1000
        )
        assert gaps >= 1

    def test_high_value_cardinality(self):
        stream = football_stream(20_000)
        distinct = len({r.value for r in stream})
        assert distinct > 1000  # many distinct values (RLE-hostile)

    def test_deterministic(self):
        a = football_stream(100, seed=9)
        b = football_stream(100, seed=9)
        assert a == b

    def test_keyed_stream(self):
        stream = football_keyed_stream(100, num_keys=4)
        assert {r.key for r in stream} <= set(range(4))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            football_stream(-1)


class TestMachine:
    def test_rate(self):
        stream = machine_stream(1000, gaps_per_minute=0)
        span_ms = stream[-1].ts - stream[0].ts
        rate = 1000 / (span_ms / 1000)
        assert 80 < rate < 120  # ~100 Hz

    def test_low_cardinality(self):
        stream = machine_stream(20_000)
        distinct = len({r.value for r in stream})
        assert distinct <= MACHINE_DISTINCT_VALUES

    def test_states_sticky(self):
        stream = machine_stream(1000)
        changes = sum(1 for a, b in zip(stream, stream[1:]) if a.value != b.value)
        assert changes < 300  # sticky Markov states


class TestWorkloads:
    def test_dashboard_windows_lengths(self):
        windows = dashboard_windows(40)
        lengths = {w.length for w in windows}
        assert min(lengths) == 1 * SECOND_MS
        assert max(lengths) == 20 * SECOND_MS
        assert len(windows) == 40

    def test_dashboard_queries_pair_windows_with_aggregations(self):
        queries = dashboard_queries(5)
        assert len(queries) == 5
        assert all(fn.name == "sum" for _, fn in queries)

    def test_dashboard_requires_positive_count(self):
        with pytest.raises(ValueError):
            dashboard_windows(0)

    def test_constrained_stream_has_disorder_and_watermarks(self):
        records = football_stream(3000)
        stream = constrained_stream(records, fraction=0.2, max_delay=2 * SECOND_MS)
        data = [e for e in stream if isinstance(e, Record)]
        watermarks = [e for e in stream if isinstance(e, Watermark)]
        assert len(data) == 3000
        assert watermarks
        assert 0.05 < disorder_fraction(data) < 0.4

    def test_constrained_stream_watermarks_safe(self):
        records = football_stream(2000)
        stream = constrained_stream(records, fraction=0.3, max_delay=1000)
        current_wm = None
        for element in stream:
            if isinstance(element, Watermark):
                current_wm = element.ts
            elif current_wm is not None:
                assert element.ts >= current_wm  # no record behind the watermark

    def test_m4_dashboard(self):
        queries = m4_dashboard_queries(8)
        assert len(queries) == 8
        assert all(fn.name == "m4" for _, fn in queries)

    def test_session_query(self):
        window, fn = session_query(1.0)
        assert window.gap == SECOND_MS
        assert fn.name == "sum"
