"""Tests for basic and extended aggregate functions."""

import math

import pytest

from repro.aggregations import (
    ArgMax,
    ArgMin,
    Average,
    Count,
    GeometricMean,
    M4,
    Max,
    MaxCount,
    Min,
    MinCount,
    PopulationStdDev,
    SampleStdDev,
    Sum,
    SumWithoutInvert,
    default_registry,
    fold,
)
from repro.aggregations.base import AggregationClass
from repro.aggregations.extended import M4Partial
from repro.aggregations.ordered import CollectList, ConcatString, First, Last


class TestSum:
    def test_lifecycle(self):
        fn = Sum()
        partial = fn.combine(fn.lift(2.0), fn.lift(3.0))
        assert fn.lower(partial) == 5.0

    def test_invert(self):
        fn = Sum()
        assert fn.invert(10.0, 4.0) == 6.0

    def test_properties(self):
        fn = Sum()
        assert fn.commutative and fn.invertible
        assert fn.kind is AggregationClass.DISTRIBUTIVE

    def test_identity(self):
        fn = Sum()
        assert fn.combine(fn.identity(), fn.lift(5.0)) == 5.0


class TestSumWithoutInvert:
    def test_same_results_as_sum(self):
        assert fold(SumWithoutInvert(), [1.0, 2.0, 3.0]) == 6.0

    def test_invert_disabled(self):
        assert not SumWithoutInvert().invertible
        with pytest.raises(NotImplementedError):
            SumWithoutInvert().invert(5.0, 2.0)


class TestCount:
    def test_counts_values(self):
        assert fold(Count(), ["a", "b", "c"]) == 3

    def test_empty_result_is_zero(self):
        assert Count().empty_result() == 0

    def test_invert(self):
        assert Count().invert(5, 2) == 3


class TestAverage:
    def test_average(self):
        fn = Average()
        partial = fold(fn, [2.0, 4.0, 6.0])
        assert fn.lower(partial) == 4.0

    def test_empty_partial_lowers_to_none(self):
        assert Average().lower((0.0, 0)) is None

    def test_invert(self):
        fn = Average()
        partial = fold(fn, [2.0, 4.0, 6.0])
        reduced = fn.invert(partial, fn.lift(6.0))
        assert fn.lower(reduced) == 3.0

    def test_algebraic(self):
        assert Average().kind is AggregationClass.ALGEBRAIC


class TestMinMax:
    def test_min(self):
        assert fold(Min(), [5.0, 1.0, 3.0]) == 1.0

    def test_max(self):
        assert fold(Max(), [5.0, 9.0, 3.0]) == 9.0

    def test_not_invertible(self):
        assert not Min().invertible and not Max().invertible

    def test_min_unaffected_by_removal(self):
        fn = Min()
        assert fn.unaffected_by_removal(1.0, 5.0)
        assert not fn.unaffected_by_removal(1.0, 1.0)

    def test_max_unaffected_by_removal(self):
        fn = Max()
        assert fn.unaffected_by_removal(9.0, 3.0)
        assert not fn.unaffected_by_removal(9.0, 9.0)


class TestMinCountMaxCount:
    def test_mincount_tracks_multiplicity(self):
        fn = MinCount()
        assert fold(fn, [3.0, 1.0, 1.0, 2.0]) == (1.0, 2)

    def test_maxcount_tracks_multiplicity(self):
        fn = MaxCount()
        assert fold(fn, [3.0, 3.0, 1.0]) == (3.0, 2)

    def test_mincount_unaffected(self):
        fn = MinCount()
        assert fn.unaffected_by_removal((1.0, 2), fn.lift(5.0))
        assert not fn.unaffected_by_removal((1.0, 2), fn.lift(1.0))

    def test_maxcount_unaffected(self):
        fn = MaxCount()
        assert fn.unaffected_by_removal((9.0, 1), fn.lift(2.0))
        assert not fn.unaffected_by_removal((9.0, 1), fn.lift(9.0))


class TestArgMinArgMax:
    def test_argmin(self):
        fn = ArgMin()
        partial = fold(fn, [(3.0, "c"), (1.0, "a"), (2.0, "b")])
        assert fn.lower(partial) == "a"

    def test_argmax(self):
        fn = ArgMax()
        partial = fold(fn, [(3.0, "c"), (9.0, "z"), (2.0, "b")])
        assert fn.lower(partial) == "z"

    def test_argmin_tie_prefers_first(self):
        fn = ArgMin()
        partial = fold(fn, [(1.0, "first"), (1.0, "second")])
        assert fn.lower(partial) == "first"


class TestGeometricMean:
    def test_value(self):
        fn = GeometricMean()
        partial = fold(fn, [2.0, 8.0])
        assert fn.lower(partial) == pytest.approx(4.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GeometricMean().lift(0.0)

    def test_invert(self):
        fn = GeometricMean()
        partial = fold(fn, [2.0, 8.0, 4.0])
        reduced = fn.invert(partial, fn.lift(4.0))
        assert fn.lower(reduced) == pytest.approx(4.0)


class TestStdDev:
    def test_population_stddev(self):
        fn = PopulationStdDev()
        partial = fold(fn, [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert fn.lower(partial) == pytest.approx(2.0)

    def test_sample_stddev(self):
        fn = SampleStdDev()
        partial = fold(fn, [2.0, 4.0, 6.0])
        assert fn.lower(partial) == pytest.approx(2.0)

    def test_sample_stddev_needs_two_values(self):
        fn = SampleStdDev()
        assert fn.lower(fn.lift(5.0)) is None

    def test_invert(self):
        fn = PopulationStdDev()
        partial = fold(fn, [1.0, 2.0, 3.0])
        reduced = fn.invert(partial, fn.lift(2.0))
        expected = fold(fn, [1.0, 3.0])
        assert fn.lower(reduced) == pytest.approx(fn.lower(expected))


class TestM4:
    def test_m4_aggregate(self):
        fn = M4()
        partial = fold(fn, [3.0, 1.0, 4.0, 1.5])
        assert fn.lower(partial) == (1.0, 4.0, 3.0, 1.5)

    def test_m4_not_commutative(self):
        fn = M4()
        a, b = fn.lift(1.0), fn.lift(2.0)
        assert fn.combine(a, b) != fn.combine(b, a)
        assert not fn.commutative

    def test_partial_equality(self):
        assert M4Partial(1, 2, 3, 4) == M4Partial(1, 2, 3, 4)
        assert M4Partial(1, 2, 3, 4) != M4Partial(1, 2, 3, 5)


class TestOrderedAggregations:
    def test_first_and_last(self):
        assert fold(First(), [5, 6, 7]) == 5
        assert fold(Last(), [5, 6, 7]) == 7

    def test_collect_preserves_order(self):
        fn = CollectList()
        assert fn.lower(fold(fn, [3, 1, 2])) == [3, 1, 2]

    def test_collect_empty_result(self):
        assert CollectList().empty_result() == []

    def test_concat(self):
        fn = ConcatString("-")
        assert fn.lower(fold(fn, ["a", "b", "c"])) == "a-b-c"

    def test_non_commutative_flags(self):
        for fn in (First(), Last(), CollectList(), ConcatString()):
            assert not fn.commutative


class TestFold:
    def test_fold_empty_returns_none(self):
        assert fold(Sum(), []) is None

    def test_fold_single(self):
        assert fold(Sum(), [4.0]) == 4.0

    def test_lower_or_default_none(self):
        assert Sum().lower_or_default(None) is None
        assert Count().lower_or_default(None) == 0


class TestRegistry:
    def test_registry_names_match_instances(self):
        registry = default_registry()
        assert registry["sum"].name == "sum"
        assert registry["median"].name == "median"
        assert registry["90-percentile"].name == "90-percentile"

    def test_registry_covers_figure13_catalogue(self):
        registry = default_registry()
        for name in ("sum", "sum w/o invert", "min", "max", "mincount",
                     "maxcount", "argmin", "argmax", "geomean", "stddev",
                     "median", "90-percentile", "m4", "avg", "count"):
            assert name in registry
