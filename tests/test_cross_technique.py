"""Cross-technique agreement: every operator is a drop-in replacement.

The paper's premise is that general slicing replaces alternative window
operators *without changing input or output semantics*.  These tests
hold all techniques to that: on identical streams and queries, the
final results (last emission per window) must agree exactly.
"""

import pytest

from conftest import final_values, shuffled_with_disorder
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Max, Median, Min, Sum
from repro.baselines import (
    AggregateBucketsOperator,
    AggregateTreeOperator,
    CuttyOperator,
    PairsOperator,
    TupleBucketsOperator,
    TupleBufferOperator,
)
from repro.reference import reference_results
from repro.windows import SessionWindow, SlidingWindow, TumblingWindow

HORIZON = 1_000_000


def all_inorder_operators():
    return [
        ("lazy", GeneralSlicingOperator(stream_in_order=True)),
        ("eager", GeneralSlicingOperator(stream_in_order=True, eager=True)),
        ("buffer", TupleBufferOperator(stream_in_order=True)),
        ("tree", AggregateTreeOperator(stream_in_order=True)),
        ("agg-buckets", AggregateBucketsOperator(stream_in_order=True)),
        ("tuple-buckets", TupleBucketsOperator(stream_in_order=True)),
        ("pairs", PairsOperator()),
        ("cutty", CuttyOperator()),
    ]


def all_ooo_operators(lateness=HORIZON):
    return [
        ("lazy", GeneralSlicingOperator(stream_in_order=False, allowed_lateness=lateness)),
        ("eager", GeneralSlicingOperator(stream_in_order=False, eager=True, allowed_lateness=lateness)),
        ("buffer", TupleBufferOperator(stream_in_order=False, allowed_lateness=lateness)),
        ("tree", AggregateTreeOperator(stream_in_order=False, allowed_lateness=lateness)),
        ("agg-buckets", AggregateBucketsOperator(stream_in_order=False, allowed_lateness=lateness)),
    ]


@pytest.mark.parametrize("seed", range(5))
def test_inorder_periodic_queries_all_techniques(seed):
    import random

    rng = random.Random(seed)
    stream = []
    ts = 0
    for _ in range(300):
        ts += rng.randint(0, 5)
        stream.append(Record(ts, float(rng.randint(-10, 10))))
    queries = [(TumblingWindow(17), Sum()), (SlidingWindow(30, 10), Sum())]
    expected = reference_results(queries, stream, horizon=HORIZON)
    for name, operator in all_inorder_operators():
        for window, fn in queries:
            if isinstance(window, SlidingWindow):
                operator.add_query(SlidingWindow(window.length, window.slide), Sum())
            else:
                operator.add_query(TumblingWindow(window.length), Sum())
        final = final_values(operator, stream + [Watermark(HORIZON)])
        assert final == expected, name


@pytest.mark.parametrize("seed", range(5))
def test_ooo_mixed_queries_all_general_techniques(seed):
    base = [Record(t, float(t % 9)) for t in range(0, 400, 2)]
    disordered = shuffled_with_disorder(base, 0.35, 40, seed=seed)
    queries = [
        (TumblingWindow(40), Sum()),
        (SlidingWindow(60, 20), Max()),
        (SessionWindow(8), Average()),
    ]
    expected = reference_results(queries, base, horizon=HORIZON)
    for name, operator in all_ooo_operators():
        for window, fn in queries:
            if isinstance(window, SlidingWindow):
                operator.add_query(SlidingWindow(window.length, window.slide), Max())
            elif isinstance(window, SessionWindow):
                operator.add_query(SessionWindow(window.gap), Average())
            else:
                operator.add_query(TumblingWindow(window.length), Sum())
        final = final_values(operator, disordered + [Watermark(HORIZON)])
        assert final == expected, name


@pytest.mark.parametrize("seed", range(3))
def test_ooo_holistic_median_record_keeping_techniques(seed):
    base = [Record(t, float((t * 7) % 23)) for t in range(0, 240, 3)]
    disordered = shuffled_with_disorder(base, 0.3, 30, seed=seed)
    queries = [(TumblingWindow(30), Median())]
    expected = reference_results(queries, base, horizon=HORIZON)
    operators = [
        ("lazy", GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)),
        ("buffer", TupleBufferOperator(stream_in_order=False, allowed_lateness=HORIZON)),
        ("tuple-buckets", TupleBucketsOperator(stream_in_order=False, allowed_lateness=HORIZON)),
    ]
    for name, operator in operators:
        operator.add_query(TumblingWindow(30), Median())
        final = final_values(operator, disordered + [Watermark(HORIZON)])
        assert final == expected, name


def test_watermark_cadence_does_not_change_final_results():
    """Frequent vs sparse watermarks must converge to the same answers."""
    base = [Record(t, float(t % 5)) for t in range(0, 200, 2)]
    disordered = shuffled_with_disorder(base, 0.3, 20, seed=1)
    queries = [(TumblingWindow(25), Sum()), (SessionWindow(6), Sum())]
    expected = reference_results(queries, base, horizon=HORIZON)

    def run_with_watermarks(every):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)
        for window, fn in queries:
            operator.add_query(
                SessionWindow(window.gap) if isinstance(window, SessionWindow) else TumblingWindow(window.length),
                Sum(),
            )
        elements = []
        for index, record in enumerate(disordered):
            elements.append(record)
            if index % every == every - 1:
                elements.append(Watermark(record.ts - 25))
        elements.append(Watermark(HORIZON))
        return final_values(operator, elements)

    assert run_with_watermarks(3) == expected
    assert run_with_watermarks(50) == expected


def test_interleaved_identical_operators_stay_in_lockstep():
    """Processing element-by-element, lazy and eager agree at every step."""
    base = [Record(t, float(t % 4)) for t in range(0, 120, 2)]
    disordered = shuffled_with_disorder(base, 0.4, 16, seed=9)
    lazy = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)
    eager = GeneralSlicingOperator(stream_in_order=False, eager=True, allowed_lateness=HORIZON)
    for operator in (lazy, eager):
        operator.add_query(TumblingWindow(20), Sum())
        operator.add_query(SessionWindow(5), Min())
    elements = list(disordered) + [Watermark(HORIZON)]
    wm = None
    for index, element in enumerate(elements):
        left = sorted((r.query_id, r.start, r.end, repr(r.value)) for r in lazy.process(element))
        right = sorted((r.query_id, r.start, r.end, repr(r.value)) for r in eager.process(element))
        assert left == right, f"diverged at element {index}: {element}"
        if index % 20 == 19:
            wm = Watermark(element.ts if isinstance(element, Record) else element.ts)
            assert sorted(map(repr, lazy.process(wm))) == sorted(map(repr, eager.process(wm)))
