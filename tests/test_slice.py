"""Tests for the Slice data structure and its fundamental operations."""

import pytest

from repro.aggregations import M4, Max, Median, Min, Sum
from repro.core.slice_ import Slice
from repro.core.types import Record


def make_slice(start=0, end=100, store=True, functions=(Sum(),)):
    return Slice(start, end, len(functions), store_records=store)


class TestBasics:
    def test_initial_state(self):
        slice_ = make_slice()
        assert slice_.is_empty()
        assert slice_.aggs == [None]
        assert slice_.first_ts is None and slice_.last_ts is None

    def test_covers_half_open(self):
        slice_ = make_slice(10, 20)
        assert slice_.covers(10)
        assert slice_.covers(19)
        assert not slice_.covers(20)
        assert not slice_.covers(9)

    def test_open_slice_covers_everything_after_start(self):
        slice_ = Slice(10, None, 1, store_records=False)
        assert slice_.is_open
        assert slice_.covers(10**9)

    def test_end_kind_default_time(self):
        assert make_slice().end_kind == Slice.END_TIME


class TestAddInorder:
    def test_incremental_aggregate(self):
        fn = Sum()
        slice_ = make_slice()
        for ts in range(5):
            slice_.add_inorder(Record(ts, 2.0), [fn])
        assert slice_.aggs[0] == 10.0
        assert slice_.record_count == 5
        assert (slice_.first_ts, slice_.last_ts) == (0, 4)

    def test_records_retained_when_requested(self):
        slice_ = make_slice(store=True)
        slice_.add_inorder(Record(1, 1.0), [Sum()])
        assert [r.ts for r in slice_.records] == [1]

    def test_records_dropped_when_not_needed(self):
        slice_ = make_slice(store=False)
        slice_.add_inorder(Record(1, 1.0), [Sum()])
        assert slice_.records is None
        assert slice_.record_count == 1

    def test_multiple_functions(self):
        functions = [Sum(), Min()]
        slice_ = Slice(0, 10, 2, store_records=False)
        slice_.add_inorder(Record(0, 5.0), functions)
        slice_.add_inorder(Record(1, 3.0), functions)
        assert slice_.aggs == [8.0, 3.0]


class TestAddOutOfOrder:
    def test_commutative_incremental_update(self):
        fn = Sum()
        slice_ = make_slice()
        slice_.add_inorder(Record(5, 1.0), [fn])
        slice_.add_out_of_order(Record(2, 2.0), [fn])
        assert slice_.aggs[0] == 3.0
        assert slice_.first_ts == 2

    def test_records_kept_sorted(self):
        slice_ = make_slice()
        fn = Sum()
        for ts in (5, 2, 8, 3):
            if ts == 5:
                slice_.add_inorder(Record(ts, 1.0), [fn])
            else:
                slice_.add_out_of_order(Record(ts, 1.0), [fn])
        assert [r.ts for r in slice_.records] == [2, 3, 5, 8]

    def test_noncommutative_recomputes_in_ts_order(self):
        fn = M4()
        slice_ = make_slice(functions=(fn,))
        slice_.add_inorder(Record(5, 50.0), [fn])
        slice_.add_inorder(Record(9, 90.0), [fn])
        slice_.add_out_of_order(Record(2, 20.0), [fn])
        # first must be the ts=2 value, last the ts=9 value.
        assert fn.lower(slice_.aggs[0]) == (20.0, 90.0, 20.0, 90.0)


class TestRecompute:
    def test_recompute_from_records(self):
        fn = Sum()
        slice_ = make_slice()
        for ts in range(4):
            slice_.add_inorder(Record(ts, 1.0), [fn])
        slice_.aggs[0] = 999.0
        slice_.recompute([fn])
        assert slice_.aggs[0] == 4.0

    def test_recompute_without_records_raises(self):
        slice_ = make_slice(store=False)
        with pytest.raises(ValueError):
            slice_.recompute([Sum()])


class TestRemoveLast:
    def test_invertible_removal(self):
        fn = Sum()
        slice_ = make_slice()
        for ts in range(3):
            slice_.add_inorder(Record(ts, float(ts)), [fn])
        removed = slice_.remove_last_record([fn])
        assert removed.ts == 2
        assert slice_.aggs[0] == 1.0
        assert slice_.last_ts == 1

    def test_min_removal_skips_recompute_when_unaffected(self):
        fn = Min()
        slice_ = make_slice(functions=(fn,))
        slice_.add_inorder(Record(0, 1.0), [fn])
        slice_.add_inorder(Record(1, 9.0), [fn])
        slice_.remove_last_record([fn])
        assert slice_.aggs[0] == 1.0

    def test_max_removal_recomputes_when_affected(self):
        fn = Max()
        slice_ = make_slice(functions=(fn,))
        slice_.add_inorder(Record(0, 1.0), [fn])
        slice_.add_inorder(Record(1, 9.0), [fn])
        slice_.remove_last_record([fn])
        assert slice_.aggs[0] == 1.0

    def test_removing_only_record_empties_aggregate(self):
        fn = Sum()
        slice_ = make_slice()
        slice_.add_inorder(Record(0, 5.0), [fn])
        slice_.remove_last_record([fn])
        assert slice_.aggs == [None]
        assert slice_.is_empty()
        assert slice_.first_ts is None

    def test_remove_without_records_raises(self):
        slice_ = make_slice(store=False)
        slice_.add_inorder(Record(0, 1.0), [Sum()])
        with pytest.raises(ValueError):
            slice_.remove_last_record([Sum()])


class TestPrepend:
    def test_prepend_preserves_order_for_noncommutative(self):
        fn = M4()
        slice_ = make_slice(functions=(fn,))
        slice_.add_inorder(Record(5, 50.0), [fn])
        slice_.prepend_record(Record(1, 10.0), [fn])
        assert fn.lower(slice_.aggs[0]) == (10.0, 50.0, 10.0, 50.0)
        assert [r.ts for r in slice_.records] == [1, 5]
        assert slice_.first_ts == 1


class TestMerge:
    def test_merge_combines_aggs_and_metadata(self):
        fn = Sum()
        left = make_slice(0, 10)
        right = make_slice(10, 20)
        left.add_inorder(Record(1, 1.0), [fn])
        right.add_inorder(Record(11, 2.0), [fn])
        left.merge_from(right, [fn])
        assert left.end == 20
        assert left.aggs[0] == 3.0
        assert left.record_count == 2
        assert (left.first_ts, left.last_ts) == (1, 11)
        assert [r.ts for r in left.records] == [1, 11]

    def test_merge_with_empty_right(self):
        fn = Sum()
        left = make_slice(0, 10)
        left.add_inorder(Record(1, 1.0), [fn])
        right = make_slice(10, 20)
        left.merge_from(right, [fn])
        assert left.aggs[0] == 1.0
        assert left.last_ts == 1

    def test_merge_into_empty_left(self):
        fn = Sum()
        left = make_slice(0, 10)
        right = make_slice(10, 20)
        right.add_inorder(Record(12, 2.0), [fn])
        left.merge_from(right, [fn])
        assert left.aggs[0] == 2.0
        assert left.first_ts == 12

    def test_merge_rejects_preceding_slice(self):
        left = make_slice(10, 20)
        right = make_slice(0, 10)
        with pytest.raises(ValueError):
            left.merge_from(right, [Sum()])


class TestSplit:
    def _filled(self, fn, n=10):
        slice_ = Slice(0, 100, 1, store_records=True)
        for index in range(n):
            slice_.add_inorder(Record(index * 10, float(index)), [fn])
        return slice_

    def test_split_at_partitions_records(self):
        fn = Sum()
        slice_ = self._filled(fn)
        right = slice_.split_at(50, [fn])
        assert slice_.end == 50 and right.start == 50
        assert [r.ts for r in slice_.records] == [0, 10, 20, 30, 40]
        assert [r.ts for r in right.records] == [50, 60, 70, 80, 90]
        assert slice_.aggs[0] == 0 + 1 + 2 + 3 + 4
        assert right.aggs[0] == 5 + 6 + 7 + 8 + 9

    def test_split_boundary_belongs_to_right(self):
        fn = Sum()
        slice_ = self._filled(fn, 3)  # ts 0, 10, 20
        right = slice_.split_at(10, [fn])
        assert [r.ts for r in slice_.records] == [0]
        assert [r.ts for r in right.records] == [10, 20]

    def test_split_requires_records(self):
        slice_ = Slice(0, 100, 1, store_records=False)
        with pytest.raises(ValueError):
            slice_.split_at(50, [Sum()])

    def test_split_point_outside_raises(self):
        fn = Sum()
        slice_ = self._filled(fn)
        with pytest.raises(ValueError):
            slice_.split_at(0, [fn])
        with pytest.raises(ValueError):
            slice_.split_at(100, [fn])

    def test_split_at_count(self):
        fn = Sum()
        slice_ = self._filled(fn)
        right = slice_.split_at_count(3, [fn])
        assert slice_.record_count == 3
        assert right.record_count == 7
        assert slice_.end == right.start == 30
        assert slice_.end_kind == Slice.END_COUNT

    def test_split_holistic_recomputes(self):
        fn = Median()
        slice_ = Slice(0, 100, 1, store_records=True)
        for index in range(9):
            slice_.add_inorder(Record(index, float(index)), [fn])
        right = slice_.split_at(5, [fn])
        assert fn.lower(slice_.aggs[0]) == 2.0
        assert fn.lower(right.aggs[0]) == 7.0


class TestSplitEmpty:
    def test_split_empty_right_side(self):
        fn = Sum()
        slice_ = Slice(0, 100, 1, store_records=False)
        slice_.add_inorder(Record(70, 7.0), [fn])
        right = slice_.split_empty_at(50, [fn])
        assert slice_.is_empty() and slice_.aggs == [None]
        assert right.aggs[0] == 7.0
        assert right.first_ts == 70
        assert slice_.end == 50 and right.start == 50

    def test_split_empty_left_side(self):
        fn = Sum()
        slice_ = Slice(0, 100, 1, store_records=False)
        slice_.add_inorder(Record(20, 2.0), [fn])
        right = slice_.split_empty_at(50, [fn])
        assert slice_.aggs[0] == 2.0
        assert right.is_empty()

    def test_split_empty_straddling_records_raises(self):
        fn = Sum()
        slice_ = Slice(0, 100, 1, store_records=False)
        slice_.add_inorder(Record(20, 1.0), [fn])
        slice_.add_inorder(Record(80, 1.0), [fn])
        with pytest.raises(ValueError):
            slice_.split_empty_at(50, [fn])

    def test_split_empty_on_empty_slice(self):
        slice_ = Slice(0, 100, 1, store_records=False)
        right = slice_.split_empty_at(50, [Sum()])
        assert slice_.is_empty() and right.is_empty()

    def test_split_empty_keeps_record_lists(self):
        fn = Sum()
        slice_ = Slice(0, 100, 1, store_records=True)
        slice_.add_inorder(Record(70, 7.0), [fn])
        right = slice_.split_empty_at(50, [fn])
        assert slice_.records == []
        assert [r.ts for r in right.records] == [70]
