"""Tests for the runtime substrate: disorder, metrics, pipeline, partition."""

import pytest

from repro.core.types import Record, Watermark
from repro.runtime import (
    CollectSink,
    CountingSink,
    FilterOperator,
    GeneratorSource,
    LatencyHarness,
    ListSource,
    MapOperator,
    PartitionedExecutor,
    Pipeline,
    ThroughputResult,
    deep_sizeof,
    disorder_fraction,
    hash_partition,
    inject_disorder,
    measure_throughput,
    paced_replay,
    with_watermarks,
)


class TestInjectDisorder:
    def _base(self, n=200):
        return [Record(ts, float(ts)) for ts in range(n)]

    def test_zero_fraction_keeps_order(self):
        stream = inject_disorder(self._base(), 0.0, 10)
        assert [r.ts for r in stream] == list(range(200))

    def test_event_times_preserved(self):
        stream = inject_disorder(self._base(), 0.5, 20, seed=1)
        assert sorted(r.ts for r in stream) == list(range(200))

    def test_fraction_roughly_respected(self):
        stream = inject_disorder(self._base(1000), 0.3, 50, seed=2)
        measured = disorder_fraction(stream)
        assert 0.1 < measured < 0.5

    def test_delays_bounded(self):
        stream = inject_disorder(self._base(500), 0.4, 10, seed=3)
        max_seen = -1
        for record in stream:
            if record.ts < max_seen:
                assert max_seen - record.ts <= 10 + 1
            max_seen = max(max_seen, record.ts)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            inject_disorder(self._base(), 1.5, 10)

    def test_invalid_delay_range(self):
        with pytest.raises(ValueError):
            inject_disorder(self._base(), 0.5, 5, min_delay=10)

    def test_deterministic_given_seed(self):
        a = inject_disorder(self._base(), 0.4, 10, seed=5)
        b = inject_disorder(self._base(), 0.4, 10, seed=5)
        assert [r.ts for r in a] == [r.ts for r in b]


class TestWithWatermarks:
    def test_watermarks_trail_max_ts(self):
        records = [Record(ts, 0.0) for ts in range(0, 100, 10)]
        elements = list(with_watermarks(records, interval=20, max_delay=5))
        watermarks = [e for e in elements if isinstance(e, Watermark)]
        assert watermarks
        max_seen = None
        for element in elements:
            if isinstance(element, Record):
                max_seen = element.ts if max_seen is None else max(max_seen, element.ts)
            else:
                assert element.ts <= max_seen - 5 or element is elements[-1]

    def test_final_watermark_flushes(self):
        records = [Record(5, 0.0)]
        elements = list(with_watermarks(records, interval=10, max_delay=2))
        assert isinstance(elements[-1], Watermark)
        assert elements[-1].ts > 5

    def test_no_final_when_disabled(self):
        records = [Record(5, 0.0)]
        elements = list(with_watermarks(records, interval=100, max_delay=0, final=False))
        assert all(not isinstance(e, Watermark) or e.ts <= 5 for e in elements)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            list(with_watermarks([], interval=0))


class TestDisorderFraction:
    def test_in_order(self):
        assert disorder_fraction([Record(t, 0) for t in range(5)]) == 0.0

    def test_all_late(self):
        assert disorder_fraction([Record(5, 0), Record(1, 0), Record(0, 0)]) == pytest.approx(2 / 3)

    def test_empty(self):
        assert disorder_fraction([]) == 0.0


class TestMetrics:
    def test_measure_throughput_counts_records(self):
        from repro import GeneralSlicingOperator
        from repro.aggregations import Sum
        from repro.windows import TumblingWindow

        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        stream = [Record(ts, 1.0) for ts in range(100)]
        outcome = measure_throughput(op, stream)
        assert outcome.records == 100
        assert outcome.records_per_second > 0
        assert outcome.results_emitted == 9

    def test_throughput_result_repr(self):
        result = ThroughputResult(1000, 0.5, 10)
        assert result.records_per_second == 2000

    def test_records_per_second_zero_length_measurement(self):
        # A zero-length measurement must not report an infinite rate.
        assert ThroughputResult(0, 0.0, 0).records_per_second == 0.0
        assert ThroughputResult(100, 0.0, 0).records_per_second == 0.0
        assert ThroughputResult(0, 1.0, 0).records_per_second == 0.0

    def test_measure_throughput_restores_gc_and_collects(self, monkeypatch):
        import gc

        from repro import GeneralSlicingOperator
        from repro.aggregations import Sum
        from repro.windows import TumblingWindow

        collects = []
        real_collect = gc.collect
        monkeypatch.setattr(
            gc, "collect", lambda *args: collects.append(args) or real_collect()
        )

        def run_once():
            op = GeneralSlicingOperator(stream_in_order=True)
            op.add_query(TumblingWindow(10), Sum())
            measure_throughput(op, [Record(ts, 1.0) for ts in range(50)])

        assert gc.isenabled()
        run_once()
        assert gc.isenabled(), "gc must be re-enabled after a measurement"
        # One collect before the timed region, one after it.
        assert len(collects) == 2
        gc.disable()
        try:
            # With gc already disabled, the measurement must leave it
            # disabled but still collect the garbage it produced.
            collects.clear()
            run_once()
            assert not gc.isenabled()
            assert len(collects) == 2, "post-run collect skipped"
        finally:
            gc.enable()

    def test_measure_throughput_batched_path_equivalent(self):
        from repro import GeneralSlicingOperator
        from repro.aggregations import Sum
        from repro.windows import TumblingWindow

        def operator():
            op = GeneralSlicingOperator(stream_in_order=True)
            op.add_query(TumblingWindow(10), Sum())
            return op

        stream = [Record(ts, 1.0) for ts in range(100)]
        tuple_at_a_time = measure_throughput(operator(), stream)
        batched_run = measure_throughput(operator(), stream, batch_size=16)
        assert batched_run.records == tuple_at_a_time.records == 100
        assert batched_run.results_emitted == tuple_at_a_time.results_emitted

    def test_measure_throughput_rejects_bad_batch_size(self):
        from repro import GeneralSlicingOperator

        with pytest.raises(ValueError):
            measure_throughput(GeneralSlicingOperator(), [], batch_size=0)

    def test_percentile_nearest_rank_known_samples(self):
        from repro.runtime.metrics import LatencyStats

        # 100 samples 1..100: nearest-rank p50 = 50th sample, p99 = 99th,
        # p100 = the maximum.  int(q*n) truncation returned 51/100/100.
        stats = LatencyStats(list(range(1, 101)))
        assert stats.p50 == 50
        assert stats.p99 == 99
        assert stats.p100 == 100
        assert stats.percentile(0.0) == 1
        # 4 samples: p50 is the 2nd (ceil(0.5*4)=2), p99/p100 the 4th.
        stats = LatencyStats([10, 20, 30, 40])
        assert stats.p50 == 20
        assert stats.p99 == 40
        assert stats.p100 == 40
        # Single sample: every percentile collapses onto it.
        stats = LatencyStats([7])
        assert stats.p50 == stats.p99 == stats.p100 == 7

    def test_latency_harness_measures(self):
        harness = LatencyHarness(warmup=2, iterations=20)
        stats = harness.measure(lambda: sum(range(100)))
        assert stats.p50 > 0
        assert stats.minimum <= stats.p50 <= stats.p99
        assert len(stats.samples) == 20

    def test_latency_compare(self):
        harness = LatencyHarness(warmup=1, iterations=5)
        out = harness.compare({"a": lambda: 1, "b": lambda: 2})
        assert set(out) == {"a", "b"}

    def test_latency_harness_validation(self):
        with pytest.raises(ValueError):
            LatencyHarness(warmup=-1)
        with pytest.raises(ValueError):
            LatencyHarness(iterations=0)


class TestPipeline:
    def _operator(self):
        from repro import GeneralSlicingOperator
        from repro.aggregations import Sum
        from repro.windows import TumblingWindow

        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        return op

    def test_collect_sink(self):
        pipeline = Pipeline(self._operator(), CollectSink())
        pipeline.run([Record(ts, 1.0) for ts in range(25)])
        assert [(r.start, r.end) for r in pipeline.results()] == [(0, 10), (10, 20)]

    def test_map_stage(self):
        pipeline = Pipeline(self._operator(), CollectSink())
        pipeline.add_stage(MapOperator(lambda r: Record(r.ts, r.value * 2)))
        pipeline.run([Record(ts, 1.0) for ts in range(12)])
        assert pipeline.results()[0].value == 20.0

    def test_filter_stage(self):
        pipeline = Pipeline(self._operator(), CollectSink())
        pipeline.add_stage(FilterOperator(lambda r: r.ts % 2 == 0))
        pipeline.run([Record(ts, 1.0) for ts in range(13)])
        assert pipeline.results()[0].value == 5.0

    def test_counting_sink(self):
        sink = CountingSink()
        pipeline = Pipeline(self._operator(), sink)
        pipeline.run([Record(ts, 1.0) for ts in range(25)])
        assert sink.count == 2

    def test_results_requires_collect_sink(self):
        pipeline = Pipeline(self._operator(), CountingSink())
        with pytest.raises(TypeError):
            pipeline.results()

    def test_batched_pipeline_matches_tuple_at_a_time(self):
        stream = [Record(ts, 1.0) for ts in range(25)]
        reference = Pipeline(self._operator(), CollectSink())
        reference.run(stream)
        batched_pipeline = Pipeline(
            self._operator(), CollectSink(), batch_size=8
        )
        batched_pipeline.run(stream)
        key = lambda r: (r.query_id, r.start, r.end, r.value)
        assert list(map(key, batched_pipeline.results())) == list(
            map(key, reference.results())
        )

    def test_batched_pipeline_flushes_on_watermark(self):
        from repro import GeneralSlicingOperator
        from repro.aggregations import Sum
        from repro.windows import TumblingWindow

        op = GeneralSlicingOperator(stream_in_order=False)
        op.add_query(TumblingWindow(10), Sum())
        pipeline = Pipeline(op, CollectSink(), batch_size=100)
        pipeline.push(Record(1, 1.0))
        pipeline.push(Record(5, 2.0))
        # A watermark must flush the buffered records first, then pass
        # through, even though the batch is not yet full.
        pipeline.push(Watermark(10))
        assert [(r.start, r.end, r.value) for r in pipeline.results()] == [
            (0, 10, 3.0)
        ]

    def test_pipeline_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            Pipeline(self._operator(), CollectSink(), batch_size=0)


class TestPartition:
    def test_hash_partition_routes_by_key(self):
        elements = [Record(t, 1.0, key=t % 3) for t in range(30)]
        partitions = hash_partition(elements, 3)
        assert sum(len(p) for p in partitions) == 30
        for partition in partitions:
            keys = {e.key for e in partition}
            assert len(keys) <= 2  # hash may collide but stays consistent

    def test_watermarks_broadcast(self):
        elements = [Record(0, 1.0, key=1), Watermark(5), Record(6, 1.0, key=2)]
        partitions = hash_partition(elements, 2)
        for partition in partitions:
            assert any(isinstance(e, Watermark) for e in partition)

    def test_keyless_round_robin(self):
        elements = [Record(t, 1.0) for t in range(10)]
        partitions = hash_partition(elements, 2)
        assert len(partitions[0]) == len(partitions[1]) == 5

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            hash_partition([], 0)

    def test_partitioned_executor_results_complete(self):
        from repro import GeneralSlicingOperator
        from repro.aggregations import Sum
        from repro.windows import TumblingWindow

        def factory():
            op = GeneralSlicingOperator(stream_in_order=True)
            op.add_query(TumblingWindow(10), Sum())
            return op

        elements = [Record(t, 1.0, key=t % 4) for t in range(40)]
        executor = PartitionedExecutor(factory, 4)
        output = executor.run(elements)
        assert set(output) == {0, 1, 2, 3}
        total = sum(r.value for results in output.values() for r in results)
        # Windows [0,10), [10,20), [20,30) complete in every partition.
        assert total == 30.0


class TestSources:
    def test_list_source_repeatable(self):
        source = ListSource([Record(0, 1.0), Watermark(5)])
        assert len(list(source)) == 2
        assert len(list(source)) == 2
        assert len(source.records()) == 1

    def test_generator_source_restartable(self):
        source = GeneratorSource(lambda: (Record(t, 0.0) for t in range(3)))
        assert len(list(source)) == 3
        assert len(list(source)) == 3

    def test_paced_replay_sleeps_by_event_gap(self):
        sleeps = []
        fake_now = [0.0]

        def clock():
            return fake_now[0]

        def sleep(duration):
            sleeps.append(duration)
            fake_now[0] += duration

        records = [Record(0, 0.0), Record(100, 0.0), Record(150, 0.0)]
        list(paced_replay(records, speedup=1.0, clock=clock, sleep=sleep))
        assert sleeps == pytest.approx([0.1, 0.05])

    def test_paced_replay_speedup(self):
        sleeps = []
        fake_now = [0.0]
        records = [Record(0, 0.0), Record(100, 0.0)]
        list(
            paced_replay(
                records,
                speedup=2.0,
                clock=lambda: fake_now[0],
                sleep=lambda d: sleeps.append(d) or fake_now.__setitem__(0, fake_now[0] + d),
            )
        )
        assert sleeps == pytest.approx([0.05])

    def test_paced_replay_invalid_speedup(self):
        with pytest.raises(ValueError):
            list(paced_replay([], speedup=0))

    def test_batched_chunks_and_preserves_order(self):
        from repro.runtime import batched

        elements = [Record(t, float(t)) for t in range(10)]
        chunks = list(batched(elements, 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [r.ts for chunk in chunks for r in chunk] == list(range(10))

    def test_batched_invalid_size(self):
        from repro.runtime import batched

        with pytest.raises(ValueError):
            list(batched([], 0))
