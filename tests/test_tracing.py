"""Runtime tracing: counter correctness and the zero-cost-off contract.

Two properties matter:

1. When enabled, counters must mean what docs/observability.md says they
   mean -- checked here against hand-derived expectations on streams
   small enough to reason through.
2. When disabled (the default), tracing must be *absent*, not merely
   quiet: no tracer object, no counter storage on any component, and
   bit-identical window results to a traced run.
"""

import pickle

import pytest

from conftest import final_values
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.core.tracing import SpanStats, Tracer
from repro.runtime.checkpoint import CheckpointingOperator, restore, snapshot
from repro.runtime.keyed import KeyedWindowOperator
from repro.windows import SessionWindow, TumblingWindow


def _tumbling_stream():
    """25 records, one per ms at ts 0..24, value 1.0 each."""
    return [Record(ts, 1.0) for ts in range(25)]


class TestTracerAPI:
    def test_count_and_value(self):
        tracer = Tracer()
        tracer.count("a.x")
        tracer.count("a.x", 4)
        tracer.count("b.y", 2)
        assert tracer.value("a.x") == 5
        assert tracer.value("b.y") == 2
        assert tracer.value("missing") == 0

    def test_span_records_calls_and_time(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        stats = tracer.spans["phase"]
        assert isinstance(stats, SpanStats)
        assert stats.calls == 2
        assert stats.total_ns >= 0

    def test_snapshot_sorted_and_reset(self):
        tracer = Tracer()
        tracer.count("z.last")
        tracer.count("a.first")
        snap = tracer.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        tracer.reset()
        assert tracer.counters == {}
        assert tracer.spans == {}

    def test_merge_from_sums_counters(self):
        left, right = Tracer(), Tracer()
        left.count("n", 2)
        right.count("n", 3)
        right.count("only.right")
        left.merge_from([right])
        assert left.value("n") == 5
        assert left.value("only.right") == 1

    def test_matching_prefix(self):
        tracer = Tracer()
        tracer.count("slicer.cuts")
        tracer.count("slicer.slices_created", 2)
        tracer.count("store.range_queries")
        assert tracer.matching("slicer.") == {
            "slicer.cuts": 1,
            "slicer.slices_created": 2,
        }

    def test_format_mentions_counters(self):
        tracer = Tracer()
        tracer.count("operator.records", 7)
        text = tracer.format()
        assert "operator.records" in text
        assert "7" in text

    def test_tracer_pickles(self):
        tracer = Tracer()
        tracer.count("x", 3)
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.value("x") == 3


class TestHandComputedCounters:
    def test_lazy_tumbling_counters(self):
        """TumblingWindow(10) over ts 0..24, flushed by Watermark(100).

        Hand derivation: records fall into three slices [0,10), [10,20),
        [20,30), so 3 slice heads open (one cut + one cached-edge lookup
        each).  The watermark triggers all three windows; each tumbling
        window is exactly one slice, so 3 range queries combining 1
        slice each.  The two slices entirely below the final watermark
        are evicted; the open head [20,30) is retained.
        """
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        final = final_values(operator, _tumbling_stream() + [Watermark(100)])
        assert final == {(0, 0, 10): 10.0, (0, 10, 20): 10.0, (0, 20, 30): 5.0}
        assert tracer.value("operator.records") == 25
        assert tracer.value("operator.ooo_records") == 0
        assert tracer.value("slicer.slices_created") == 3
        assert tracer.value("slicer.cuts") == 3
        assert tracer.value("slicer.edge_lookups") == 3
        assert tracer.value("store.range_queries") == 3
        assert tracer.value("store.slices_combined") == 3
        assert tracer.value("store.slices_evicted") == 2

    def test_eager_adds_flatfat_counters(self):
        """Same stream, eager store forced to FlatFAT: the tree traces.

        (Forced because auto-selection gives the invertible in-order Sum
        a subtract-on-evict kernel; see the kernel counter tests below.)
        The tree doubles capacity as slices 1..3 arrive (3 rebuilds) and
        answers one query per emitted window.  Node updates cover both
        rebuild sweeps and per-record leaf-to-root paths; the exact
        total (30 here) is pinned so accidental extra tree work shows up.
        """
        operator = GeneralSlicingOperator(
            stream_in_order=True, eager=True, kernel="flatfat"
        )
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        final = final_values(operator, _tumbling_stream() + [Watermark(100)])
        assert final == {(0, 0, 10): 10.0, (0, 10, 20): 10.0, (0, 20, 30): 5.0}
        assert tracer.value("flatfat.rebuilds") == 3
        assert tracer.value("flatfat.queries") == 3
        assert tracer.value("flatfat.node_updates") == 30

    def test_eager_kernel_counters(self):
        """Eager store: slice traffic reaches the kernels, whatever they
        are.  3 slices open (3 appends); the final watermark evicts the
        2 closed slices; the auto-selected subtract-on-evict kernel
        answers the 3 window queries."""
        operator = GeneralSlicingOperator(stream_in_order=True, eager=True)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        final = final_values(operator, _tumbling_stream() + [Watermark(100)])
        assert final == {(0, 0, 10): 10.0, (0, 10, 20): 10.0, (0, 20, 30): 5.0}
        assert tracer.value("kernel.appends") == 3
        assert tracer.value("kernel.evictions") == 2
        assert tracer.value("subtract_on_evict.queries") == 3
        assert tracer.value("flatfat.rebuilds") == 0  # no tree in play

    def test_shared_window_counters(self):
        """Two wide sliding windows ending on every edge share a suffix.

        Windows of 100 and 200 with slide 10 trigger together at each
        edge and span 10/20 slices; the pair ending at the same slice
        index differs only in ``lo``, so the wider one extends the
        shorter one's partial (one ``share.hit`` per trigger batch above
        the ``share_min_savings`` crossover).
        """
        from repro.windows import SlidingWindow

        stream = [Record(ts, 1.0) for ts in range(0, 400, 2)]

        def build(**kwargs):
            operator = GeneralSlicingOperator(stream_in_order=True, **kwargs)
            operator.add_query(SlidingWindow(100, 10), Sum())
            operator.add_query(SlidingWindow(200, 10), Sum())
            return operator

        operator = build()
        tracer = operator.enable_tracing()
        for element in stream + [Watermark(1_000)]:
            operator.process(element)
        assert tracer.value("share.requests") > 0
        assert tracer.value("share.hits") >= 2
        # Sharing off: same stream, no share counters at all.
        plain = build(share_windows=False)
        plain_tracer = plain.enable_tracing()
        for element in stream + [Watermark(1_000)]:
            plain.process(element)
        assert plain_tracer.value("share.requests") == 0
        assert plain_tracer.value("share.hits") == 0

    def test_share_plan_skipped_below_savings_threshold(self):
        """Short slice ranges resolve directly: the plan's grouping
        would cost more than the combines it saves, so the share
        counters never fire even with sharing enabled."""
        from repro.windows import SlidingWindow

        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(SlidingWindow(10, 10), Sum())
        operator.add_query(SlidingWindow(20, 10), Sum())
        tracer = operator.enable_tracing()
        for ts in range(0, 100, 2):
            operator.process(Record(ts, 1.0))
        operator.process(Watermark(1_000))
        assert tracer.value("share.requests") == 0
        assert tracer.value("share.hits") == 0

    def test_out_of_order_record_counters(self):
        """ts=5 arrives after ts=20: one out-of-order insert, no split
        (the record lands inside the existing slice [0,10))."""
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=1000)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        for record in [Record(0, 1.0), Record(20, 1.0), Record(5, 1.0)]:
            operator.process(record)
        assert tracer.value("operator.records") == 3
        assert tracer.value("operator.ooo_records") == 1
        assert tracer.value("slice_manager.ooo_records") == 1
        assert tracer.value("slice_manager.splits") == 0

    def test_session_late_record_splits_slice(self):
        """A late record falling between two sessions splits the slicer's
        coarse slice to host it (1 split), and both late arrivals count."""
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=1000)
        operator.add_query(SessionWindow(5), Sum())
        tracer = operator.enable_tracing()
        for record in [Record(0, 1.0), Record(20, 1.0), Record(11, 1.0), Record(16, 1.0)]:
            operator.process(record)
        assert tracer.value("slice_manager.ooo_records") == 2
        assert tracer.value("slice_manager.splits") == 1

    def test_late_drop_counter(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=0)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        operator.process(Record(50, 1.0))
        operator.process(Watermark(60))
        operator.process(Record(10, 1.0))  # behind the watermark: dropped
        assert tracer.value("operator.late_drops") == 1

    def test_batched_ingest_counters(self):
        """process_batch routes in-order chunks through the bulk path.

        The three records that open a new slice (ts 0, 10, 20) take the
        per-record path; the other 22 flow through bulk appends.  Every
        record counts toward ``operator.records`` regardless of path.
        """
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        operator.process_batch(_tumbling_stream())
        assert tracer.value("operator.records") == 25
        assert tracer.value("batch.bulk_records") == 22
        assert tracer.value("batch.bulk_runs") == 3

    def test_checkpoint_byte_counters(self):
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = Tracer()
        blob = snapshot(operator, tracer=tracer)
        assert tracer.value("checkpoint.snapshots") == 1
        assert tracer.value("checkpoint.bytes_written") == len(blob)
        restore(blob, tracer=tracer)
        assert tracer.value("checkpoint.restores") == 1
        assert tracer.value("checkpoint.bytes_restored") == len(blob)

    def test_checkpointing_operator_traces_through_wrapper(self):
        inner = GeneralSlicingOperator(stream_in_order=True)
        operator = CheckpointingOperator(inner, every=10)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        for element in _tumbling_stream():
            operator.process(element)
        assert operator.snapshots_taken >= 2
        assert tracer.value("checkpoint.snapshots") == operator.snapshots_taken
        assert tracer.value("checkpoint.bytes_written") > 0
        assert tracer.value("operator.records") == 25  # inner operator shares it


class TestDisabledTracing:
    def test_off_by_default_and_nowhere_on_components(self):
        operator = GeneralSlicingOperator(stream_in_order=True, eager=True)
        operator.add_query(TumblingWindow(10), Sum())
        assert operator.tracer is None
        for chain in operator._chains.values():
            assert chain.slicer.tracer is None
            assert chain.manager.tracer is None
            assert chain.store.tracer is None

    def test_results_identical_with_and_without_tracing(self):
        stream = _tumbling_stream() + [Watermark(100)]

        def build():
            operator = GeneralSlicingOperator(stream_in_order=True)
            operator.add_query(TumblingWindow(10), Sum())
            return operator

        plain = build()
        traced = build()
        traced.enable_tracing()
        assert final_values(plain, stream) == final_values(traced, stream)

    def test_disable_detaches_everywhere_but_keeps_counts(self):
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        operator.process(Record(0, 1.0))
        operator.disable_tracing()
        assert operator.tracer is None
        for chain in operator._chains.values():
            assert chain.slicer.tracer is None
            assert chain.manager.tracer is None
            assert chain.store.tracer is None
        # The detached tracer keeps what it saw; nothing new accrues.
        seen = tracer.value("operator.records")
        operator.process(Record(1, 1.0))
        assert tracer.value("operator.records") == seen == 1

    def test_tracer_survives_query_set_changes(self):
        """add_query rebuilds the chains; the tracer must re-attach."""
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(10), Sum())
        tracer = operator.enable_tracing()
        operator.process(Record(0, 1.0))
        operator.add_query(TumblingWindow(20), Sum())
        operator.process(Record(1, 1.0))
        assert operator.tracer is tracer
        assert tracer.value("operator.records") == 2
        for chain in operator._chains.values():
            assert chain.slicer.tracer is tracer

    def test_external_tracer_can_be_shared(self):
        shared = Tracer()
        a = GeneralSlicingOperator(stream_in_order=True)
        a.add_query(TumblingWindow(10), Sum())
        b = GeneralSlicingOperator(stream_in_order=True)
        b.add_query(TumblingWindow(10), Sum())
        assert a.enable_tracing(shared) is shared
        b.enable_tracing(shared)
        a.process(Record(0, 1.0))
        b.process(Record(0, 1.0))
        assert shared.value("operator.records") == 2


class TestKeyedTracing:
    def test_keyed_operators_share_the_wrapper_tracer(self):
        operator = KeyedWindowOperator(_keyed_factory)
        tracer = operator.enable_tracing()
        for ts, key in [(0, "a"), (1, "b"), (2, "a"), (3, "c")]:
            operator.process(Record(ts, 1.0, key=key))
        assert tracer.value("operator.records") == 4
        for key in operator.keys:
            assert operator.operator_for(key).tracer is tracer

    def test_keyed_disable_propagates(self):
        operator = KeyedWindowOperator(_keyed_factory)
        operator.enable_tracing()
        operator.process(Record(0, 1.0, key="a"))
        operator.disable_tracing()
        assert operator.operator_for("a").tracer is None


def _keyed_factory():
    inner = GeneralSlicingOperator(stream_in_order=True)
    inner.add_query(TumblingWindow(10), Sum())
    return inner
