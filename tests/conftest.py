"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import pathlib
import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.operator_base import WindowOperator
from repro.core.types import Record, StreamElement, Watermark

#: Repository ``src/`` directory holding the ``repro`` package.
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def subprocess_env(**overrides: str) -> Dict[str, str]:
    """Environment for CLI subprocess tests with ``repro`` importable.

    Starts from the current environment (so the interpreter keeps its
    toolchain paths) and prepends the repo's ``src/`` to ``PYTHONPATH``;
    tests that launched ``python -m repro...`` with a scrubbed ``env``
    lost the path the parent test run was using and failed to import
    ``repro``.  ``overrides`` win over inherited variables.
    """
    env = dict(os.environ)
    env.update(overrides)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing else f"{SRC_DIR}{os.pathsep}{existing}"
    )
    return env


def run_operator(operator: WindowOperator, elements) -> list:
    """Process a stream and return all emitted results."""
    results = []
    for element in elements:
        results.extend(operator.process(element))
    return results


def final_values(operator: WindowOperator, elements) -> Dict[Tuple[int, int, int], object]:
    """Process a stream; return the last emitted value per window."""
    final: Dict[Tuple[int, int, int], object] = {}
    for element in elements:
        for result in operator.process(element):
            final[(result.query_id, result.start, result.end)] = result.value
    return final


def records(pairs: Sequence[Tuple[int, float]]) -> List[Record]:
    """Build records from (ts, value) pairs."""
    return [Record(ts, value) for ts, value in pairs]


def shuffled_with_disorder(
    base: Sequence[Record], fraction: float, max_delay: int, seed: int = 0
) -> List[Record]:
    """Simple disorder injection for tests (independent of runtime.disorder)."""
    rng = random.Random(seed)
    delayed: List[Tuple[int, int, Record]] = []
    out: List[Record] = []
    seq = 0
    for record in base:
        ready = sorted(entry for entry in delayed if entry[0] <= record.ts)
        for entry in ready:
            out.append(entry[2])
            delayed.remove(entry)
        if rng.random() < fraction:
            delayed.append((record.ts + rng.randint(1, max_delay), seq, record))
            seq += 1
        else:
            out.append(record)
    for entry in sorted(delayed):
        out.append(entry[2])
    return out


@pytest.fixture
def simple_stream() -> List[Record]:
    """25 records, one per timestamp 0..24, value 1.0 each."""
    return [Record(ts, 1.0) for ts in range(25)]


@pytest.fixture
def valued_stream() -> List[Record]:
    """50 records every 2 ts with value ts % 7."""
    return [Record(ts, float(ts % 7)) for ts in range(0, 100, 2)]
