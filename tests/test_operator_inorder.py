"""End-to-end tests of GeneralSlicingOperator on in-order streams."""

import pytest

from conftest import final_values, run_operator
from repro import GeneralSlicingOperator, Record, StreamOrderViolation, Watermark
from repro.aggregations import M4, Average, CollectList, Max, Median, Sum
from repro.core.types import Punctuation
from repro.reference import reference_results
from repro.windows import (
    CountSlidingWindow,
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)


def make_operator(eager=False):
    return GeneralSlicingOperator(stream_in_order=True, eager=eager)


class TestTumbling:
    @pytest.mark.parametrize("eager", [False, True])
    def test_basic_sums(self, eager, simple_stream):
        op = make_operator(eager)
        op.add_query(TumblingWindow(10), Sum())
        results = run_operator(op, simple_stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 10, 10.0),
            (10, 20, 10.0),
        ]

    def test_emission_is_immediate(self, simple_stream):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        out = []
        for record in simple_stream[:11]:
            out.extend(op.process(record))
        # Window [0, 10) emitted exactly when record ts=10 arrived.
        assert [(r.start, r.end) for r in out] == [(0, 10)]

    def test_gap_skips_empty_windows(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        results = run_operator(op, [Record(5, 1.0), Record(95, 1.0), Record(105, 1.0)])
        assert [(r.start, r.end) for r in results] == [(0, 10), (90, 100)]

    def test_watermark_flushes_final_window(self, simple_stream):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        run_operator(op, simple_stream)
        results = op.process(Watermark(100))
        assert [(r.start, r.end, r.value) for r in results] == [(20, 30, 5.0)]

    def test_late_record_raises(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        op.process(Record(10, 1.0))
        with pytest.raises(StreamOrderViolation):
            op.process(Record(5, 1.0))

    def test_equal_timestamps_allowed(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        results = run_operator(
            op, [Record(1, 1.0), Record(1, 2.0), Record(11, 0.0)]
        )
        assert results[0].value == 3.0


class TestSliding:
    @pytest.mark.parametrize("eager", [False, True])
    def test_overlapping_windows_share_slices(self, eager, simple_stream):
        op = make_operator(eager)
        op.add_query(SlidingWindow(10, 5), Sum())
        results = run_operator(op, simple_stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 10, 10.0),
            (5, 15, 10.0),
            (10, 20, 10.0),
        ]

    def test_unaligned_slide(self):
        op = make_operator()
        op.add_query(SlidingWindow(7, 3), Sum())
        stream = [Record(ts, 1.0) for ts in range(20)]
        results = run_operator(op, stream)
        expected = reference_results([(SlidingWindow(7, 3), Sum())], stream, horizon=19)
        got = {(0, r.start, r.end): r.value for r in results}
        assert got == expected

    def test_multiple_queries_share_one_chain(self, simple_stream):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        op.add_query(SlidingWindow(10, 5), Sum())
        run_operator(op, simple_stream)
        # Slices cut at the union of edges (multiples of 5 here).
        assert op.total_slices() <= 6


class TestSession:
    def test_sessions_split_on_gap(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        stream = [Record(t, 1.0) for t in [1, 2, 3, 20, 21, 40]]
        results = run_operator(op, stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (1, 8, 3.0),
            (20, 26, 2.0),
        ]

    def test_open_session_flushed_by_watermark(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        run_operator(op, [Record(1, 1.0)])
        results = op.process(Watermark(100))
        assert [(r.start, r.end, r.value) for r in results] == [(1, 6, 1.0)]

    def test_record_at_exact_gap_starts_new_session(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        results = run_operator(op, [Record(0, 1.0), Record(5, 1.0), Record(50, 0.0)])
        assert [(r.start, r.end) for r in results] == [(0, 5), (5, 10)]

    def test_sessions_and_tumbling_together(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        op.add_query(SessionWindow(3), Sum())
        stream = [Record(t, 1.0) for t in [1, 2, 8, 9, 15, 30]]
        final = final_values(op, stream + [Watermark(100)])
        assert final[(0, 0, 10)] == 4.0
        assert final[(0, 10, 20)] == 1.0
        # Gap 8-2 >= 3 splits sessions: [1,5) and [8,12).
        assert final[(1, 1, 5)] == 2.0
        assert final[(1, 8, 12)] == 2.0
        assert final[(1, 15, 18)] == 1.0


class TestCountWindows:
    def test_count_tumbling(self):
        op = make_operator()
        op.add_query(CountTumblingWindow(3), Sum())
        results = run_operator(op, [Record(t, float(t)) for t in range(10)])
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 3, 3.0),
            (3, 6, 12.0),
            (6, 9, 21.0),
        ]

    def test_count_sliding(self):
        op = make_operator()
        op.add_query(CountSlidingWindow(4, 2), Sum())
        stream = [Record(t, 1.0) for t in range(12)]
        final = final_values(op, stream + [Watermark(100)])
        expected = reference_results([(CountSlidingWindow(4, 2), Sum())], stream)
        assert final == expected

    def test_time_and_count_queries_together(self):
        op = make_operator()
        op.add_query(TumblingWindow(4), Sum())
        op.add_query(CountTumblingWindow(3), Sum())
        stream = [Record(t, 1.0) for t in range(12)]
        final = final_values(op, stream + [Watermark(100)])
        expected = reference_results(
            [(TumblingWindow(4), Sum()), (CountTumblingWindow(3), Sum())], stream
        )
        assert final == expected


class TestPunctuationWindows:
    def test_punctuation_delimited(self):
        op = make_operator()
        op.add_query(PunctuationWindow(), Sum())
        elements = [
            Record(1, 1.0),
            Record(2, 1.0),
            Punctuation(5),
            Record(7, 1.0),
            Punctuation(9),
            Record(11, 1.0),
        ]
        results = run_operator(op, elements)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 5, 2.0),
            (5, 9, 1.0),
        ]


class TestMultiMeasure:
    def test_last_n_every(self):
        op = make_operator()
        op.add_query(LastNEveryWindow(count=3, every=10), Sum())
        stream = [Record(t, 1.0) for t in range(0, 25, 2)]
        results = run_operator(op, stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (2, 5, 3.0),
            (7, 10, 3.0),
        ]

    def test_fca_forces_record_retention_inorder(self):
        op = make_operator()
        op.add_query(LastNEveryWindow(count=3, every=10), Sum())
        assert op.stores_records


class TestAggregations:
    def test_average(self, valued_stream):
        op = make_operator()
        op.add_query(TumblingWindow(20), Average())
        final = final_values(op, valued_stream + [Watermark(1000)])
        expected = reference_results(
            [(TumblingWindow(20), Average())], valued_stream, horizon=1000
        )
        assert final == expected

    def test_median(self, valued_stream):
        op = make_operator()
        op.add_query(TumblingWindow(20), Median())
        final = final_values(op, valued_stream + [Watermark(1000)])
        expected = reference_results(
            [(TumblingWindow(20), Median())], valued_stream, horizon=1000
        )
        assert final == expected

    def test_m4_inorder_without_records(self, valued_stream):
        op = make_operator()
        op.add_query(TumblingWindow(20), M4())
        assert not op.stores_records  # non-commutative is fine in-order
        final = final_values(op, valued_stream + [Watermark(1000)])
        expected = reference_results(
            [(TumblingWindow(20), M4())], valued_stream, horizon=1000
        )
        assert final == expected

    def test_collect_list_order(self):
        op = make_operator()
        op.add_query(TumblingWindow(5), CollectList())
        results = run_operator(op, [Record(0, "a"), Record(3, "b"), Record(7, "c")])
        assert results[0].value == ["a", "b"]

    def test_shared_function_instance_one_partial_per_slice(self, simple_stream):
        op = make_operator()
        shared = Sum()
        op.add_query(TumblingWindow(10), shared)
        op.add_query(SlidingWindow(10, 5), shared)
        from repro.core.measures import MeasureKind

        chain = op._chains[MeasureKind.TIME]
        assert len(chain.functions) == 1
        run_operator(op, simple_stream)


class TestEagerVsLazyEquivalence:
    def test_identical_outputs_across_window_mix(self, valued_stream):
        queries = [
            (TumblingWindow(10), Sum()),
            (SlidingWindow(14, 7), Max()),
            (SessionWindow(4), Sum()),
        ]
        outputs = []
        for eager in (False, True):
            op = make_operator(eager)
            for window, fn in queries:
                op.add_query(type(window)(**_window_kwargs(window)), type(fn)())
            outputs.append(final_values(op, valued_stream + [Watermark(10**6)]))
        assert outputs[0] == outputs[1]


def _window_kwargs(window):
    if isinstance(window, SlidingWindow):
        return {"length": window.length, "slide": window.slide}
    if isinstance(window, SessionWindow):
        return {"gap": window.gap}
    return {"length": window.length}


class TestMultipleSessionGaps:
    def test_two_session_queries_different_gaps(self):
        from repro.reference import reference_results

        op = make_operator()
        op.add_query(SessionWindow(3), Sum())
        op.add_query(SessionWindow(8), Sum())
        stream = [Record(t, 1.0) for t in [0, 2, 7, 18, 20, 40]]
        final = final_values(op, stream + [Watermark(10_000)])
        expected = reference_results(
            [(SessionWindow(3), Sum()), (SessionWindow(8), Sum())],
            stream,
            horizon=10_000,
        )
        assert final == expected

    def test_different_gaps_out_of_order(self):
        from conftest import shuffled_with_disorder
        from repro.reference import reference_results

        base = [Record(t, float(t % 4)) for t in range(0, 200, 5)]
        disordered = shuffled_with_disorder(base, 0.3, 25, seed=6)
        queries = [(SessionWindow(7), Sum()), (SessionWindow(20), Sum())]
        op = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10_000)
        for window, fn in queries:
            op.add_query(window, fn)
        final = final_values(op, disordered + [Watermark(10_000)])
        expected = reference_results(queries, base, horizon=10_000)
        assert final == expected
