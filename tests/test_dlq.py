"""Dead-letter queue: poison-record quarantine under supervision.

A record whose UDF raises deterministically must not kill the run: the
supervisor retries (transient faults heal), isolates the culprit,
quarantines it with full context, and continues -- and a later crash
must neither re-emit nor re-quarantine it.  See
:mod:`repro.runtime.durability` (the queue) and
:mod:`repro.runtime.recovery` (the supervision loop around it).
"""

from __future__ import annotations

import pytest

from conftest import run_operator
from repro import GeneralSlicingOperator, Record
from repro.aggregations import Sum
from repro.runtime import (
    CollectSink,
    DeadLetterOverflow,
    DeadLetterQueue,
    DiskCheckpointStore,
    FaultInjectingOperator,
    PipelineFailed,
    PoisonRecord,
    RestartPolicy,
    SupervisedPipeline,
    Tracer,
)
from repro.windows import TumblingWindow

NO_SLEEP = lambda _seconds: None  # noqa: E731 - keep tests instant

#: Sentinel value the poisonous aggregation chokes on.
POISON = -66.0


class PoisonousSum(Sum):
    """Sum whose UDF deterministically raises on the poison value.

    Overrides *both* ``lift`` and the ``fold_values`` batch fast path --
    batched ingestion folds raw values without lifting each one, so a
    poison check in ``lift`` alone would never fire on the batch path.
    """

    name = "poisonous sum"

    def lift(self, value: float) -> float:
        if value == POISON:
            raise ValueError(f"poison value {value}")
        return value

    def fold_values(self, partial, values):
        if any(value == POISON for value in values):
            raise ValueError(f"poison value {POISON} in batch")
        return super().fold_values(partial, values)


def build_operator():
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(5), PoisonousSum())
    return operator


def poisoned_stream(poison_at, n=60):
    poison_at = set(poison_at)
    return [
        Record(t, POISON if t in poison_at else 1.0) for t in range(n)
    ]


def reference_results(stream):
    """What an unfailing run over the stream *minus poison* emits."""
    return run_operator(
        build_operator(), [r for r in stream if r.value != POISON]
    )


def supervised(operator, **kwargs):
    sink = CollectSink()
    kwargs.setdefault("sleep", NO_SLEEP)
    kwargs.setdefault("checkpoint_every", 10)
    kwargs.setdefault("batch_size", 4)
    return SupervisedPipeline(operator, sink, **kwargs), sink


class TestQuarantine:
    def test_poison_record_quarantined_and_run_completes(self):
        stream = poisoned_stream([23])
        dlq = DeadLetterQueue(max_retries=2)
        pipeline, sink = supervised(build_operator(), dlq=dlq)

        stats = pipeline.run(stream)

        # The run completed and the sink saw exactly the poison-free
        # reference output -- windows around the culprit included.
        assert sink.results == reference_results(stream)
        assert len(dlq) == 1
        entry = dlq.entries[0]
        assert isinstance(entry, PoisonRecord)
        assert entry.record.value == POISON
        assert entry.cursor == 23
        # Every batch-level failure at that cursor counted: the retry
        # budget plus the final failure that triggered isolation.
        assert entry.attempts == dlq.max_retries + 1
        assert isinstance(entry.cause, ValueError)
        assert dlq.retries == dlq.max_retries
        assert stats.quarantined_records == 1

    def test_max_retries_zero_isolates_immediately(self):
        stream = poisoned_stream([23])
        dlq = DeadLetterQueue(max_retries=0)
        pipeline, sink = supervised(build_operator(), dlq=dlq)
        pipeline.run(stream)
        assert sink.results == reference_results(stream)
        assert dlq.retries == 0
        assert dlq.entries[0].attempts == 1

    def test_multiple_poison_records_all_quarantined(self):
        stream = poisoned_stream([10, 23, 41])
        dlq = DeadLetterQueue(max_retries=1)
        pipeline, sink = supervised(build_operator(), dlq=dlq)
        stats = pipeline.run(stream)
        assert sink.results == reference_results(stream)
        assert sorted(entry.cursor for entry in dlq.entries) == [10, 23, 41]
        assert stats.quarantined_records == 3

    def test_adjacent_poison_records_in_one_batch(self):
        # Two culprits in the same batch: isolation must find both, one
        # rewind at a time.
        stream = poisoned_stream([21, 22])
        dlq = DeadLetterQueue(max_retries=1)
        pipeline, sink = supervised(build_operator(), dlq=dlq)
        pipeline.run(stream)
        assert sink.results == reference_results(stream)
        assert sorted(entry.cursor for entry in dlq.entries) == [21, 22]

    def test_without_dlq_poison_exhausts_restart_budget(self):
        stream = poisoned_stream([23])
        pipeline, _sink = supervised(
            build_operator(), restart_policy=RestartPolicy(max_restarts=2)
        )
        with pytest.raises(PipelineFailed):
            pipeline.run(stream)

    def test_quarantine_works_against_disk_store(self, tmp_path):
        stream = poisoned_stream([23])
        dlq = DeadLetterQueue(max_retries=1)
        pipeline, sink = supervised(
            build_operator(),
            dlq=dlq,
            store=DiskCheckpointStore(tmp_path / "ckpt", keep=3),
        )
        pipeline.run(stream)
        assert sink.results == reference_results(stream)
        assert len(dlq) == 1


class TestTransientVsPoison:
    def test_transient_fault_heals_within_retry_budget(self):
        """A fault that fires once is NOT poison: the retry succeeds and
        nothing is quarantined."""
        stream = poisoned_stream([])  # no poison, full reference
        wrapped = FaultInjectingOperator(build_operator(), error_at=[15])
        dlq = DeadLetterQueue(max_retries=2)
        pipeline, sink = supervised(wrapped, dlq=dlq)

        stats = pipeline.run(stream)

        assert sink.results == run_operator(build_operator(), stream)
        assert len(dlq) == 0
        assert dlq.retries == 1
        assert stats.quarantined_records == 0
        assert stats.restarts >= 1  # the healed retry was a real restore

    def test_crash_elsewhere_does_not_quarantine_poison_free_stream(self):
        stream = poisoned_stream([])
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[30])
        dlq = DeadLetterQueue(max_retries=3)
        pipeline, sink = supervised(wrapped, dlq=dlq)
        pipeline.run(stream)
        assert sink.results == run_operator(build_operator(), stream)
        assert len(dlq) == 0


class TestReplayInterplay:
    def test_crash_after_quarantine_neither_reemits_nor_requarantines(self):
        """Satellite: DLQ x checkpoint-replay.  A crash whose replay
        window spans a quarantined record must re-deliver nothing twice:
        the quarantine log filters the record on every pass and the
        emitted-results log dedups the surrounding windows."""
        stream = poisoned_stream([23])
        seen = []
        dlq = DeadLetterQueue(max_retries=1, on_poison_record=seen.append)
        # Huge checkpoint interval: both the quarantine rewind and the
        # later crash replay from cursor 0, crossing cursor 23 again.
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[45])
        pipeline, sink = supervised(
            wrapped, dlq=dlq, checkpoint_every=1_000, batch_size=4
        )

        stats = pipeline.run(stream)

        assert sink.results == reference_results(stream)
        # Quarantined exactly once, observed exactly once.
        assert len(dlq) == 1
        assert len(seen) == 1
        assert seen[0] is dlq.entries[0]
        assert stats.quarantined_records == 1
        # The crash replay really did cross the quarantine point and
        # dedup already-delivered windows.
        assert stats.deduped_results > 0

    def test_poison_then_checkpoint_then_crash(self):
        """With a short checkpoint cadence the post-quarantine crash
        restores a checkpoint taken *after* the quarantine decision; the
        decision must still hold (it lives in the supervisor's log)."""
        stream = poisoned_stream([13])
        dlq = DeadLetterQueue(max_retries=1)
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[40])
        pipeline, sink = supervised(
            wrapped, dlq=dlq, checkpoint_every=10, batch_size=4
        )
        pipeline.run(stream)
        assert sink.results == reference_results(stream)
        assert len(dlq) == 1
        assert [entry.cursor for entry in dlq.entries] == [13]


class TestOverflowAndHooks:
    def test_capacity_overflow_escalates_to_restart_budget(self):
        stream = poisoned_stream([10, 30])
        dlq = DeadLetterQueue(max_retries=1, capacity=1)
        pipeline, _sink = supervised(
            build_operator(),
            dlq=dlq,
            restart_policy=RestartPolicy(max_restarts=2),
        )
        with pytest.raises(PipelineFailed) as excinfo:
            pipeline.run(stream)
        # The first culprit fit; the second overflowed and escalated.
        assert len(dlq) == 1
        assert dlq.entries[0].cursor == 10
        assert any(
            isinstance(f, DeadLetterOverflow) for f in excinfo.value.failures
        )

    def test_hook_failure_propagates(self):
        def explode(_entry):
            raise RuntimeError("pager is on fire")

        dlq = DeadLetterQueue(max_retries=0, on_poison_record=explode)
        with pytest.raises(RuntimeError, match="pager"):
            dlq.quarantine(
                Record(0, POISON), cursor=0, attempts=1, cause=ValueError("x")
            )
        # The record was admitted before the hook ran.
        assert len(dlq) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(max_retries=-1)
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)


class TestCounters:
    def test_tracer_threaded_through_pipeline(self):
        stream = poisoned_stream([23])
        tracer = Tracer()
        dlq = DeadLetterQueue(max_retries=2)
        pipeline, _sink = supervised(build_operator(), dlq=dlq, tracer=tracer)
        pipeline.run(stream)
        assert tracer.value("dlq.quarantined") == 1
        assert tracer.value("dlq.retries") == dlq.retries
        # The store shares the same tracer by default.
        assert tracer.value("durability.saves") > 0
        assert tracer.value("durability.loads") > 0
