"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper via
:mod:`repro.experiments.figures`, prints the resulting table (captured
in the pytest output), saves it under ``benchmarks/results/``, and
asserts the paper's qualitative *shape* (who wins, roughly by how much,
where crossovers fall).  Absolute numbers are Python-sized, not
JVM-sized; see EXPERIMENTS.md.

Workloads honour ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(table) -> None:
    """Persist a rendered result table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    head, _, tail = table.title.partition(":")
    slug_source = head if not head.lower().startswith("ablation") else table.title
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in slug_source.strip().lower()
    ).strip("_")
    while "__" in slug:
        slug = slug.replace("__", "_")
    slug = slug[:60]
    text = table.render()
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    print("\n" + text)


def geometric_speedup(table, key_column, value_column, fast, slow, where=None):
    """Average ratio fast/slow across matching rows (shape assertions)."""
    rows = table.rows
    if where is not None:
        rows = [row for row in rows if where(row)]
    fast_values = {}
    slow_values = {}
    for row in rows:
        if row[key_column] == fast:
            fast_values[tuple(row[c] for c in table.columns if c not in (key_column, value_column))] = row[value_column]
        elif row[key_column] == slow:
            slow_values[tuple(row[c] for c in table.columns if c not in (key_column, value_column))] = row[value_column]
    ratios = [
        fast_values[key] / slow_values[key]
        for key in fast_values
        if key in slow_values and slow_values[key]
    ]
    if not ratios:
        raise AssertionError(f"no comparable rows for {fast} vs {slow}")
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))
