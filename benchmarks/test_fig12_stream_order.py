"""Figure 12: impact of out-of-order fraction (12a) and delay (12b).

Paper shape: slicing and buckets hold near-constant throughput as the
out-of-order fraction rises and are robust against longer delays; the
tuple buffer and (especially) the aggregate tree decay with the
fraction, and the tuple buffer additionally decays with the delay.
"""

from conftest import save_table

from repro.experiments.figures import fig12_stream_order

FRACTIONS = (0.0, 0.2, 0.6)
DELAYS = ((0, 200), (0, 2_000), (2_000, 6_000))


def run():
    return fig12_stream_order(
        fractions=FRACTIONS,
        delay_ranges=DELAYS,
        num_records=5_000,
        concurrent_windows=10,
    )


def _series(table, panel, technique, x_column):
    rows = [r for r in table.rows if r["panel"] == panel and r["technique"] == technique]
    rows.sort(key=lambda r: r[x_column])
    return [r["throughput"] for r in rows]


def test_fig12_stream_order(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)

    # 12a: slicing tolerates growing ooo fractions far better than the
    # aggregate tree, whose leaf inserts are O(n).
    lazy = _series(table, "12a", "Lazy Slicing", "fraction")
    tree = _series(table, "12a", "Aggregate Tree", "fraction")
    lazy_decay = lazy[0] / lazy[-1]
    tree_decay = tree[0] / tree[-1]
    assert tree_decay > 2 * lazy_decay, (lazy, tree)
    assert lazy_decay < 4, lazy

    # At 60% disorder slicing dominates both buffer and tree.
    at60 = {
        row["technique"]: row["throughput"]
        for row in table.rows
        if row["panel"] == "12a" and row["fraction"] == FRACTIONS[-1]
    }
    assert at60["Lazy Slicing"] > 2 * at60["Aggregate Tree"]
    assert at60["Lazy Slicing"] > at60["Tuple Buffer"]

    # 12b: slicing robust against the delay magnitude.
    lazy_delay = _series(table, "12b", "Lazy Slicing", "delay_hi")
    assert max(lazy_delay) / min(lazy_delay) < 4, lazy_delay
