"""Figure 9: throughput under constraints (20% out-of-order + sessions).

Paper shape: general slicing keeps an order-of-magnitude lead over
non-slicing techniques and scales to many concurrent windows with
near-constant throughput; the aggregate tree collapses (expensive leaf
inserts on disorder); results look alike on both datasets because
performance follows workload, not data, characteristics.
"""

import pytest
from conftest import save_table

from repro.experiments.figures import fig9_ooo_throughput

WINDOWS = (1, 8, 64)


def run(dataset):
    return fig9_ooo_throughput(
        windows_list=WINDOWS, num_records=5_000, dataset=dataset
    )


@pytest.mark.parametrize("dataset", ["football", "machine"])
def test_fig9_ooo_throughput(benchmark, dataset):
    table = benchmark.pedantic(run, args=(dataset,), rounds=1, iterations=1)
    save_table(table)
    at_max = {
        row["technique"]: row["throughput"]
        for row in table.rows
        if row["windows"] == max(WINDOWS)
    }
    # Lazy slicing leads; eager close behind; both far above the rest.
    assert at_max["Lazy Slicing"] >= 0.5 * max(at_max.values())
    for slow in ("Buckets", "Tuple Buffer", "Aggregate Tree"):
        assert at_max["Lazy Slicing"] > 3 * at_max[slow], (slow, at_max)
    # The aggregate tree is the worst technique under disorder.
    assert at_max["Aggregate Tree"] == min(at_max.values()), at_max

    # Slicing throughput stays roughly flat in the window count.
    lazy = table.series("technique", "throughput")["Lazy Slicing"]
    assert max(lazy) / min(lazy) < 8, lazy
