"""Figure 14: holistic aggregation (median) across techniques/datasets.

Paper shape: slicing beats the tuple buffer and tuple buckets on
holistic aggregations because sorted RLE-encoded slices are shared
among overlapping windows instead of recomputed per window; the
low-cardinality machine dataset (37 distinct values) runs faster than
the high-cardinality football dataset thanks to run-length encoding.
"""

from conftest import save_table

from repro.experiments.figures import fig14_holistic


def run():
    return fig14_holistic(num_records=2_500, concurrent_windows=10)


def _value(table, dataset, technique):
    for row in table.rows:
        if row["dataset"] == dataset and row["technique"] == technique:
            return row["throughput"]
    raise KeyError((dataset, technique))


def test_fig14_holistic(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)

    for dataset in ("football", "machine"):
        slicing = _value(table, dataset, "Lazy Slicing")
        buffer = _value(table, dataset, "Tuple Buffer")
        buckets = _value(table, dataset, "Tuple Buckets")
        assert slicing > buffer, (dataset, slicing, buffer)
        assert slicing > buckets, (dataset, slicing, buckets)

    # Cardinality effect: machine (37 distinct values) beats football
    # (~tens of thousands) for slicing thanks to RLE.
    assert _value(table, "machine", "Lazy Slicing") > _value(
        table, "football", "Lazy Slicing"
    )
