"""Figure 16: impact of the windowing measure (time vs count).

Paper shape: time-based slicing throughput is independent of the
number of concurrent windows; count-based slicing decays as windows
multiply (smaller slices mean more shift work per late record) but
stays well ahead of the tuple buffer, the best non-slicing alternative
for count windows.
"""

from conftest import save_table

from repro.experiments.figures import fig16_measures

WINDOWS = (4, 16, 64)


def run():
    return fig16_measures(windows_list=WINDOWS, num_records=4_000)


def test_fig16_measures(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)
    series = table.series("series", "throughput")

    # Time-based slicing roughly flat across window counts.
    time_series = series["slicing (time)"]
    assert max(time_series) / min(time_series) < 6, time_series

    # Count-based slicing overtakes the tuple buffer (the fastest
    # alternative) as windows multiply, and the advantage widens.
    count_slicing = series["slicing (count)"]
    count_buffer = series["tuple buffer (count)"]
    assert count_slicing[-1] > 1.5 * count_buffer[-1], (count_slicing, count_buffer)
    ratios = [fast / slow for fast, slow in zip(count_slicing, count_buffer)]
    assert ratios[-1] > ratios[0], ratios

    # Count-based is slower than time-based at high window counts
    # (the paper's decay effect).
    assert count_slicing[-1] < time_series[-1], (count_slicing, time_series)
