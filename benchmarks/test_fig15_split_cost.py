"""Figure 15: processing time for recomputing aggregates after splits.

Paper shape: recomputation time grows linearly with the number of
records in the split slice, and holistic aggregates (median) cost far
more per record than algebraic ones (sum).
"""

from conftest import save_table

from repro.experiments.figures import fig15_split_cost

SIZES = (100, 1_000, 10_000)


def run():
    return fig15_split_cost(sizes=SIZES, repetitions=5)


def _series(table, aggregation):
    rows = [r for r in table.rows if r["aggregation"] == aggregation]
    rows.sort(key=lambda r: r["tuples"])
    return [r["time_us"] for r in rows]


def test_fig15_split_cost(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)

    for aggregation in ("sum", "median"):
        series = _series(table, aggregation)
        # Monotone growth, roughly linear: 100x records within ~8-500x time.
        assert series[0] < series[1] < series[2], series
        assert 8 < series[2] / series[0] < 2_000, series

    # Holistic recomputation costs much more than algebraic recomputation.
    assert _series(table, "median")[-1] > 5 * _series(table, "sum")[-1]
