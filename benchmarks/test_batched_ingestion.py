"""Ablation: batched ingestion fast path vs tuple-at-a-time processing.

The batched path (``GeneralSlicingOperator.process_batch``) amortizes
the per-record slice-edge check over in-order runs: one ``bisect`` per
cached edge finds how many records the open slice can absorb, and the
run is bulk-folded with ``Slice.add_run`` (a single partial-aggregate
update per incremental function).  The workload is the Figure 8
configuration -- in-order football stream, dashboard window set, Sum --
where per-record dispatch dominates and the paper's cached-edge trick
has the most room to amortize further.
"""

from conftest import save_table

from repro.aggregations import Sum
from repro.core.operator_ import GeneralSlicingOperator
from repro.data.football import football_stream
from repro.data.workloads import dashboard_windows
from repro.experiments.harness import ResultTable, scaled
from repro.runtime.metrics import measure_throughput

BATCH_SIZES = (64, 1024)


def _operator(windows=8):
    operator = GeneralSlicingOperator(stream_in_order=True)
    for window in dashboard_windows(windows):
        operator.add_query(window, Sum())
    return operator


def run_batched_ingestion_ablation():
    """Tuple-at-a-time vs batched, Figure 8 in-order sum workload."""
    records = football_stream(scaled(20_000))
    table = ResultTable(
        "Ablation: batched ingestion vs tuple-at-a-time (in-order sum)",
        ["variant", "throughput", "results"],
    )

    outcome = measure_throughput(_operator(), records)
    table.add(
        variant="tuple-at-a-time",
        throughput=outcome.records_per_second,
        results=outcome.results_emitted,
    )
    reference_emitted = outcome.results_emitted

    for batch_size in BATCH_SIZES:
        outcome = measure_throughput(_operator(), records, batch_size=batch_size)
        table.add(
            variant=f"batched ({batch_size})",
            throughput=outcome.records_per_second,
            results=outcome.results_emitted,
        )
        assert outcome.results_emitted == reference_emitted, (
            "batched path must emit exactly the tuple-at-a-time results"
        )
    return table


def test_ablation_batched_ingestion(benchmark):
    table = benchmark.pedantic(run_batched_ingestion_ablation, rounds=1, iterations=1)
    save_table(table)
    series = {row["variant"]: row["throughput"] for row in table.rows}
    baseline = series["tuple-at-a-time"]
    best = max(series[f"batched ({size})"] for size in BATCH_SIZES)
    # The acceptance bar: bulk folding must beat per-record dispatch
    # clearly, not marginally.
    assert best >= 1.5 * baseline, (
        f"batched ingestion only reached {best / baseline:.2f}x "
        f"over tuple-at-a-time"
    )
