"""Figure 17: parallel stream slicing (M4 dashboard workload).

Paper shape: throughput scales near-linearly with the degree of
parallelism while dedicated cores are available, CPU utilization grows
with the worker count, and slicing holds an order-of-magnitude lead
over buckets at every parallelism level (80 concurrent windows per
operator instance).
"""

import os

from conftest import save_table

from repro.experiments.figures import fig17_parallel

CPUS = os.cpu_count() or 1
PARALLELISM = tuple(p for p in (1, 2, 4) if p <= CPUS) or (1,)


def run():
    return fig17_parallel(parallelism_list=PARALLELISM, num_records=16_000)


def test_fig17_parallel(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)
    slicing = {
        row["parallelism"]: row["throughput"]
        for row in table.rows
        if row["technique"] == "Lazy Slicing"
    }
    buckets = {
        row["parallelism"]: row["throughput"]
        for row in table.rows
        if row["technique"] == "Buckets"
    }

    # Slicing dominates buckets at every parallelism level.
    for parallelism in PARALLELISM:
        assert slicing[parallelism] > 2 * buckets[parallelism], (
            parallelism,
            slicing,
            buckets,
        )

    if len(PARALLELISM) > 1 and CPUS >= 2 * PARALLELISM[-1] // 2:
        # Some scaling with cores (fork overhead keeps it sub-linear at
        # this workload size, but more workers must not be slower than
        # half of one worker's rate).
        top = PARALLELISM[-1]
        assert slicing[top] > 0.5 * slicing[1], slicing

    cpu = {
        row["parallelism"]: row["cpu_percent"]
        for row in table.rows
        if row["technique"] == "Lazy Slicing"
    }
    if len(PARALLELISM) > 1:
        assert cpu[PARALLELISM[-1]] > cpu[PARALLELISM[0]] * 0.8, cpu
