"""Figure 13: impact of the aggregation function (time vs count windows).

Paper shape: on time-based windows, all distributive/algebraic
functions run at similar speed while holistic functions (median,
90-percentile) are much slower.  On count-based windows with disorder,
invertible functions (sum) stay fast, the min/max family loses little
(removals rarely touch the aggregate), and a non-invertible function
that always needs recomputation ("sum w/o invert") decays hard.
"""

from conftest import save_table

from repro.experiments.figures import fig13_aggregations

AGGREGATIONS = (
    "sum",
    "sum w/o invert",
    "avg",
    "min",
    "max",
    "maxcount",
    "stddev",
    "median",
    "90-percentile",
)


def run():
    return fig13_aggregations(
        num_records=2_500, concurrent_windows=10, aggregations=AGGREGATIONS
    )


def _value(table, aggregation, measure):
    for row in table.rows:
        if row["aggregation"] == aggregation and row["measure"] == measure:
            return row["throughput"]
    raise KeyError((aggregation, measure))


def test_fig13_aggregations(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)

    # Time-based: algebraic functions cluster; holistic ones lag far behind.
    algebraic = [_value(table, name, "time") for name in ("sum", "avg", "min", "stddev")]
    assert max(algebraic) / min(algebraic) < 6, algebraic
    for holistic in ("median", "90-percentile"):
        assert _value(table, holistic, "time") < min(algebraic) / 2, holistic

    # Count-based with disorder: invertibility decides the decay.
    sum_ratio = _value(table, "sum", "count") / _value(table, "sum", "time")
    naive_ratio = _value(table, "sum w/o invert", "count") / _value(
        table, "sum w/o invert", "time"
    )
    assert naive_ratio < sum_ratio, (naive_ratio, sum_ratio)

    # min/max-family non-invertible functions barely decay: removals
    # rarely change the aggregate.
    max_ratio = _value(table, "max", "count") / _value(table, "max", "time")
    assert max_ratio > naive_ratio, (max_ratio, naive_ratio)
