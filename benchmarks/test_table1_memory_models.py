"""Table 1: memory-usage models of the eight techniques.

Regenerates the analytic models and validates them against measured
deep sizes of real operator state: the *growth direction* of every row
(which symbol each technique's memory follows) must match Table 1.
"""

from conftest import save_table

from repro.experiments.figures import _fill_count_operator, _fill_time_operator, table1_memory_models
from repro.runtime.memory import deep_sizeof


def run():
    return table1_memory_models(num_tuples=10_000, num_slices=100, num_windows=100)


def _measured(fill, name, slices, tuples):
    operator = fill(name, slices, tuples, 10_000_000)
    return sum(deep_sizeof(obj) for obj in operator.state_objects())


def test_table1_memory_models(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)
    models = {row["technique"]: row["model_bytes"] for row in table.rows}

    # Analytic ordering for a typical time-based workload.
    assert models["lazy slicing"] < models["eager slicing"]
    assert models["eager slicing"] < models["aggregate buckets"]
    assert models["aggregate buckets"] < models["tuple buffer"]
    assert models["tuple buffer"] < models["aggregate tree"]
    assert models["lazy slicing on tuples"] > models["tuple buffer"]

    # Measured growth directions match the models (time-based windows):
    # row 1: tuple buffer ~ |tuples|.
    assert _measured(_fill_time_operator, "Tuple Buffer", 50, 4_000) > 2 * _measured(
        _fill_time_operator, "Tuple Buffer", 50, 1_000
    )
    # row 5: lazy slicing ~ |slices| and flat in |tuples|.
    assert _measured(_fill_time_operator, "Lazy Slicing", 400, 2_000) > 2 * _measured(
        _fill_time_operator, "Lazy Slicing", 50, 2_000
    )
    flat_small = _measured(_fill_time_operator, "Lazy Slicing", 50, 1_000)
    flat_large = _measured(_fill_time_operator, "Lazy Slicing", 50, 4_000)
    assert flat_large < 1.5 * flat_small
    # rows 7/8: slicing on tuples (count measure) grows with |tuples|.
    assert _measured(_fill_count_operator, "Lazy Slicing", 50, 4_000) > 2 * _measured(
        _fill_count_operator, "Lazy Slicing", 50, 1_000
    )
