"""Figure 8: in-order throughput vs concurrent context-free windows.

Paper shape: all slicing techniques (lazy, eager, Pairs, Cutty) process
millions of records/s nearly independent of the number of concurrent
windows; Buckets, Tuple Buffer, and Aggregate Tree fall off by orders
of magnitude as windows grow.
"""

from conftest import geometric_speedup, save_table

from repro.experiments.figures import fig8_inorder_throughput

WINDOWS = (1, 8, 64)
SLICING = ("Lazy Slicing", "Eager Slicing", "Pairs", "Cutty")
NON_SLICING = ("Buckets", "Tuple Buffer", "Aggregate Tree")


def run():
    return fig8_inorder_throughput(windows_list=WINDOWS, num_records=8_000)


def test_fig8_inorder_throughput(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)
    by_tech = table.series("technique", "throughput")

    # Slicing beats every non-slicing technique at high window counts.
    at_max = {
        row["technique"]: row["throughput"]
        for row in table.rows
        if row["windows"] == max(WINDOWS)
    }
    for fast in SLICING:
        for slow in NON_SLICING:
            assert at_max[fast] > 3 * at_max[slow], (fast, slow, at_max)

    # Slicing stays within a small factor across window counts, while
    # buckets degrade massively.
    for name in ("Lazy Slicing", "Eager Slicing"):
        series = by_tech[name]
        assert max(series) / min(series) < 8, (name, series)
    buckets = by_tech["Buckets"]
    assert buckets[0] / buckets[-1] > 5, buckets
