"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one optimization of general slicing and shows
the cost it would re-introduce:

* RLE-encoded sorted runs vs plain sorted lists for holistic slices;
* the Figure 4 decision tree vs always storing raw records;
* lazy vs eager aggregate stores (the throughput side of Figure 11's
  latency trade-off).
"""

from conftest import save_table

from repro.aggregations import Median, PlainMedian, Sum
from repro.core.operator_ import GeneralSlicingOperator
from repro.data.football import football_stream
from repro.data.machine import machine_stream
from repro.data.workloads import SECOND_MS, constrained_stream, dashboard_windows
from repro.experiments.harness import ResultTable
from repro.runtime.memory import deep_sizeof
from repro.runtime.metrics import measure_throughput


def _operator(aggregation, windows=10, in_order=True, eager=False):
    operator = GeneralSlicingOperator(
        stream_in_order=in_order,
        eager=eager,
        allowed_lateness=0 if in_order else 4 * SECOND_MS,
    )
    for window in dashboard_windows(windows):
        operator.add_query(window, aggregation)
    return operator


def run_rle_ablation():
    """Median with RLE runs vs plain sorted lists, per dataset."""
    table = ResultTable(
        "Ablation: RLE-encoded runs vs plain sorted lists (median)",
        ["dataset", "variant", "throughput"],
    )
    for dataset, records in (
        ("machine", machine_stream(2_500)),
        ("football", football_stream(2_500)),
    ):
        for variant, aggregation in (("rle", Median()), ("plain", PlainMedian())):
            operator = _operator(aggregation)
            outcome = measure_throughput(operator, records)
            table.add(dataset=dataset, variant=variant, throughput=outcome.records_per_second)
    return table


def test_ablation_rle(benchmark):
    table = benchmark.pedantic(run_rle_ablation, rounds=1, iterations=1)
    save_table(table)
    series = {}
    for row in table.rows:
        series[(row["dataset"], row["variant"])] = row["throughput"]
    # RLE pays off on low-cardinality data (37 distinct machine states).
    assert series[("machine", "rle")] > series[("machine", "plain")]


def run_tuple_storage_ablation():
    """Decision tree vs always-store-records: memory footprint."""
    records = football_stream(6_000)
    stream = constrained_stream(records, fraction=0.2, max_delay=2 * SECOND_MS)
    table = ResultTable(
        "Ablation: Figure 4 decision tree vs always storing records",
        ["variant", "bytes", "throughput"],
    )

    adaptive = _operator(Sum(), in_order=False)
    throughput = measure_throughput(adaptive, stream).records_per_second
    table.add(
        variant="decision tree (drop records)",
        bytes=sum(deep_sizeof(o) for o in adaptive.state_objects()),
        throughput=throughput,
    )

    forced = _operator(Sum(), in_order=False)
    # Force generality: keep raw records although the tree says drop.
    for chain in forced._chains.values():
        chain.characteristics.store_tuples = True
        chain.slicer.store_records = True
        chain.manager.store_records = True
    throughput = measure_throughput(forced, stream).records_per_second
    table.add(
        variant="always store records",
        bytes=sum(deep_sizeof(o) for o in forced.state_objects()),
        throughput=throughput,
    )
    return table


def test_ablation_tuple_storage(benchmark):
    table = benchmark.pedantic(run_tuple_storage_ablation, rounds=1, iterations=1)
    save_table(table)
    adaptive, forced = table.rows
    # Dropping records per the decision tree saves substantial memory.
    assert adaptive["bytes"] < forced["bytes"] / 2, (adaptive, forced)


def run_lazy_vs_eager():
    """Throughput cost of maintaining the eager slice tree."""
    records = football_stream(6_000)
    stream = constrained_stream(records, fraction=0.2, max_delay=2 * SECOND_MS)
    table = ResultTable(
        "Ablation: lazy vs eager aggregate store (throughput side)",
        ["variant", "throughput"],
    )
    for variant, eager in (("lazy", False), ("eager", True)):
        operator = _operator(Sum(), windows=20, in_order=False, eager=eager)
        outcome = measure_throughput(operator, stream)
        table.add(variant=variant, throughput=outcome.records_per_second)
    return table


def test_ablation_lazy_vs_eager(benchmark):
    table = benchmark.pedantic(run_lazy_vs_eager, rounds=1, iterations=1)
    save_table(table)
    lazy, eager = (row["throughput"] for row in table.rows)
    # Lazy slicing keeps the throughput edge (Figures 8/9); eager stays
    # within a reasonable factor while buying its latency win.
    assert lazy > eager * 0.8
    assert eager > lazy / 10


def run_edge_cache_ablation():
    """Cached next-edge vs recomputing the edge for every record.

    The paper's Step 1 claims high efficiency because "the majority of
    tuples do not end a slice and require just one comparison of
    timestamps"; disabling the cache makes every record evaluate every
    registered window's next edge.
    """
    records = football_stream(8_000)
    table = ResultTable(
        "Ablation: cached next-edge vs per-record edge recomputation",
        ["variant", "windows", "throughput"],
    )
    for windows in (4, 32):
        for variant, cached in (("cached edge", True), ("recompute per record", False)):
            operator = _operator(Sum(), windows=windows, in_order=True)
            for chain in operator._chains.values():
                chain.slicer.cache_edges = cached
            outcome = measure_throughput(operator, records)
            table.add(variant=variant, windows=windows, throughput=outcome.records_per_second)
    return table


def test_ablation_edge_cache(benchmark):
    table = benchmark.pedantic(run_edge_cache_ablation, rounds=1, iterations=1)
    save_table(table)
    series = {}
    for row in table.rows:
        series[(row["variant"], row["windows"])] = row["throughput"]
    # The cache saves more as the number of registered windows grows.
    gain_small = series[("cached edge", 4)] / series[("recompute per record", 4)]
    gain_large = series[("cached edge", 32)] / series[("recompute per record", 32)]
    assert gain_large > gain_small, (gain_small, gain_large)
    assert gain_large > 1.5, gain_large


def run_tracing_overhead_ablation():
    """Per-record cost of the tracing layer in its three states.

    The tracing contract (docs/observability.md): disabled tracing is
    the *absence* of a tracer -- one ``is None`` check per hot-path
    site -- so an operator that never enabled tracing and one that
    enabled then disabled it must ingest at the same rate.  Enabled
    tracing pays for real counter updates and is reported for scale.

    Single-shot comparisons of ~30 ms runs drown a sub-3 % effect in
    machine noise, so the measurement is paired: every round times all
    variants back-to-back (order rotated to cancel position bias) and
    the reported ratio is the *median across rounds* of the per-round
    ratio to the never-traced baseline.
    """
    import statistics

    records = football_stream(60_000)
    variants = ("never traced", "enabled then disabled", "enabled")

    def timed(variant):
        # min-of-2 per sample: one OS scheduling hiccup can't skew a round.
        samples = []
        for _ in range(2):
            operator = _operator(Sum(), windows=10)
            if variant != "never traced":
                operator.enable_tracing()
            if variant == "enabled then disabled":
                operator.disable_tracing()
            samples.append(measure_throughput(operator, records).seconds)
        return min(samples)

    rounds = []
    for index in range(9):
        shift = index % len(variants)
        times = {
            variant: timed(variant) for variant in variants[shift:] + variants[:shift]
        }
        rounds.append(times)
    table = ResultTable(
        "Ablation: tracing never-on vs disabled vs enabled (per-record cost)",
        ["variant", "throughput", "time_ratio_to_never_traced"],
    )
    for variant in variants:
        best = min(times[variant] for times in rounds)
        ratio = statistics.median(
            times[variant] / times["never traced"] for times in rounds
        )
        table.add(
            variant=variant,
            throughput=len(records) / best,
            time_ratio_to_never_traced=ratio,
        )
    return table


def test_ablation_tracing_overhead(benchmark):
    table = benchmark.pedantic(run_tracing_overhead_ablation, rounds=1, iterations=1)
    save_table(table)
    series = {row["variant"]: row["time_ratio_to_never_traced"] for row in table.rows}
    # The acceptance bar: a disabled tracer changes per-record ingest
    # cost by less than 3 % (both paths are identical code, so only
    # measurement noise separates them).
    assert abs(series["enabled then disabled"] - 1.0) < 0.03, series
    # Enabled tracing may cost, but must stay in the same league.
    assert series["enabled"] < 3.0, series


def run_sharing_ablation():
    """Aggregate sharing across queries on vs off.

    The paper's core sharing claim: concurrent queries with identical
    aggregations cost one incremental step per record, not one per query.
    Disabling signature dedup makes every query maintain its own partial
    per slice.
    """
    records = football_stream(6_000)
    table = ResultTable(
        "Ablation: aggregate sharing across queries on vs off",
        ["variant", "windows", "throughput"],
    )
    for windows in (8, 32):
        for variant, share in (("shared", True), ("per-query", False)):
            operator = GeneralSlicingOperator(
                stream_in_order=True, share_aggregates=share
            )
            for window in dashboard_windows(windows):
                operator.add_query(window, Sum())
            outcome = measure_throughput(operator, records)
            table.add(variant=variant, windows=windows, throughput=outcome.records_per_second)
    return table


def test_ablation_sharing(benchmark):
    table = benchmark.pedantic(run_sharing_ablation, rounds=1, iterations=1)
    save_table(table)
    series = {(row["variant"], row["windows"]): row["throughput"] for row in table.rows}
    gain_small = series[("shared", 8)] / series[("per-query", 8)]
    gain_large = series[("shared", 32)] / series[("per-query", 32)]
    assert gain_large > gain_small, (gain_small, gain_large)
    assert gain_large > 2, gain_large
