"""Figure 10: memory consumption with unordered streams.

Paper shape, time-based windows (10a/10b): slicing memory grows with
the number of slices and is independent of the number of records;
tuple buffer / aggregate tree grow with records and are independent of
slices.  Count-based windows (10c/10d): every technique must keep
records, so record volume dominates all curves.
"""

from conftest import save_table

from repro.experiments.figures import fig10_memory

SLICES = (50, 200, 800)
TUPLES = (1_000, 4_000, 16_000)


def run():
    return fig10_memory(
        slices_list=SLICES,
        tuples_list=TUPLES,
        fixed_tuples=8_000,
        fixed_slices=200,
    )


def _series(table, panel, technique, x_column):
    rows = [r for r in table.rows if r["panel"] == panel and r["technique"] == technique]
    rows.sort(key=lambda r: r[x_column])
    return [r["bytes"] for r in rows]


def test_fig10_memory(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)

    # 10a (time, vary slices): slicing grows with slices...
    lazy_10a = _series(table, "10a", "Lazy Slicing", "slices")
    assert lazy_10a[-1] > 2 * lazy_10a[0], lazy_10a
    # ...while the tuple buffer is flat in the slice count.
    buffer_10a = _series(table, "10a", "Tuple Buffer", "slices")
    assert max(buffer_10a) < 1.3 * min(buffer_10a), buffer_10a

    # 10b (time, vary tuples): slicing flat; buffer/tree grow linearly.
    lazy_10b = _series(table, "10b", "Lazy Slicing", "tuples")
    assert max(lazy_10b) < 1.5 * min(lazy_10b), lazy_10b
    buffer_10b = _series(table, "10b", "Tuple Buffer", "tuples")
    assert buffer_10b[-1] > 5 * buffer_10b[0], buffer_10b
    tree_10b = _series(table, "10b", "Aggregate Tree", "tuples")
    assert tree_10b[-1] > 5 * tree_10b[0], tree_10b

    # Time-based: slicing uses far less memory than record-keeping
    # techniques at high record counts.
    assert lazy_10b[-1] < buffer_10b[-1] / 5
    assert lazy_10b[-1] < tree_10b[-1] / 5

    # 10d (count, vary tuples): record storage dominates everyone --
    # slicing now grows with tuples too.
    lazy_10d = _series(table, "10d", "Lazy Slicing", "tuples")
    assert lazy_10d[-1] > 4 * lazy_10d[0], lazy_10d
