"""Figure 11: output latency of aggregate stores (sum 11a, median 11c).

Paper shape: lazy techniques (lazy slicing, tuple buffer) pay the full
final aggregation at window end and their latency grows linearly with
the stored entries; eager techniques (eager slicing, aggregate tree)
answer from precomputed trees in O(log n); buckets answer from a
precomputed hash-map entry in O(1) -- the lowest latency of all, the
flip side of their poor throughput (the paper's latency/throughput
trade-off).
"""

from conftest import save_table

from repro.experiments.figures import fig11_latency

ENTRIES = (100, 1_000, 10_000)


def run():
    return fig11_latency(entries_list=ENTRIES, aggregations=("sum", "median"), iterations=60)


def _latency(table, aggregation, technique, entries):
    for row in table.rows:
        if (
            row["aggregation"] == aggregation
            and row["technique"] == technique
            and row["entries"] == entries
        ):
            return row["latency_ns"]
    raise KeyError((aggregation, technique, entries))


def test_fig11_latency(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(table)
    top = max(ENTRIES)

    for aggregation in ("sum", "median"):
        buckets = _latency(table, aggregation, "Buckets", top)
        eager = _latency(table, aggregation, "Eager Slicing", top)
        lazy = _latency(table, aggregation, "Lazy Slicing", top)
        buffer = _latency(table, aggregation, "Tuple Buffer", top)
        tree = _latency(table, aggregation, "Aggregate Tree", top)

        # Buckets fastest; eager techniques beat lazy ones at size.
        assert buckets <= eager, (aggregation, buckets, eager)
        assert eager < lazy / 5, (aggregation, eager, lazy)
        assert tree < buffer / 5, (aggregation, tree, buffer)

    # Lazy latency grows roughly linearly with entries; eager barely moves.
    lazy_series = [_latency(table, "sum", "Lazy Slicing", n) for n in ENTRIES]
    assert lazy_series[-1] > 10 * lazy_series[0], lazy_series
    eager_series = [_latency(table, "sum", "Eager Slicing", n) for n in ENTRIES]
    assert eager_series[-1] < 50 * eager_series[0], eager_series

    # Buckets are flat: the result is precomputed regardless of function.
    buckets_sum = _latency(table, "sum", "Buckets", top)
    buckets_median = _latency(table, "median", "Buckets", top)
    assert buckets_median < 20 * buckets_sum
